//! Before/after microbenchmarks of the three raw-speed crypto
//! primitives: field inversion (Fermat ladder → safegcd), Schnorr
//! verification (full-width wNAF ladder → GLV four-stream ladder), and
//! batch SHA-256 (sequential digests → multi-lane `digest_many`).
//!
//! Both sides of each pair are public (the "before" paths are kept as
//! `#[doc(hidden)]` reference implementations), so the comparison is
//! measured on the same build with the same inputs. The scaling rig
//! (`throughput --sweep-workers`) embeds these numbers in
//! `BENCH_PR6.json` next to the txns/s-vs-cores sweep.

use std::time::Instant;

use fides_crypto::field::FieldElement;
use fides_crypto::schnorr::KeyPair;
use fides_crypto::{Digest, Sha256};

/// One primitive's before/after timing, nanoseconds per operation.
pub struct Primitive {
    /// Stable JSON key (`field_invert`, `schnorr_verify`, ...).
    pub name: &'static str,
    /// The pre-optimization reference path.
    pub before_ns: f64,
    /// The shipping path.
    pub after_ns: f64,
}

impl Primitive {
    /// `before / after` — how many times faster the shipping path is.
    pub fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

/// Times `f` as `rounds` samples of `reps` calls each and returns the
/// median per-call cost in nanoseconds. The median makes one preempted
/// sample harmless, which matters on the shared CI boxes these run on.
fn median_ns<R>(rounds: usize, reps: usize, mut f: impl FnMut(usize) -> R) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            for i in 0..reps {
                std::hint::black_box(f(i));
            }
            t0.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Runs all three before/after pairs and returns their timings.
pub fn run() -> Vec<Primitive> {
    // Deterministic pseudo-random field elements, away from any special
    // values either inversion algorithm could shortcut on.
    let mut seed = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    let elements: Vec<FieldElement> = (0..64)
        .map(|_| FieldElement::from_limbs([next(), next(), next(), next() >> 1]))
        .collect();

    let invert = Primitive {
        name: "field_invert",
        before_ns: median_ns(7, 200, |i| elements[i % elements.len()].invert_fermat()),
        after_ns: median_ns(7, 200, |i| elements[i % elements.len()].invert()),
    };

    let kp = KeyPair::from_seed(b"bench-primitives");
    let pk = kp.public_key();
    let messages: Vec<Vec<u8>> = (0..16u32)
        .map(|i| format!("scaling rig message {i}").into_bytes())
        .collect();
    let sigs: Vec<_> = messages.iter().map(|m| kp.sign(m)).collect();
    let verify = Primitive {
        name: "schnorr_verify",
        before_ns: median_ns(7, 48, |i| {
            let i = i % sigs.len();
            assert!(pk.verify_wnaf(&messages[i], &sigs[i]));
        }),
        after_ns: median_ns(7, 48, |i| {
            let i = i % sigs.len();
            assert!(pk.verify(&messages[i], &sigs[i]));
        }),
    };

    // 64 node-hash-shaped messages (65 bytes: prefix + two digests) —
    // the Merkle batch-update workload. Reported per message.
    let node_msgs: Vec<[u8; 65]> = (0..64u8)
        .map(|i| {
            let mut m = [0u8; 65];
            m[0] = 0x01;
            m[1..33].copy_from_slice(Sha256::digest(&[i]).as_bytes());
            m[33..].copy_from_slice(Sha256::digest(&[i, i]).as_bytes());
            m
        })
        .collect();
    let refs: Vec<&[u8]> = node_msgs.iter().map(|m| m.as_slice()).collect();
    let sha = Primitive {
        name: "sha256_digest_many",
        before_ns: median_ns(7, 100, |_| {
            let out: Vec<Digest> = refs.iter().map(|m| Sha256::digest(m)).collect();
            out
        }) / refs.len() as f64,
        after_ns: median_ns(7, 100, |_| Sha256::digest_many(&refs)) / refs.len() as f64,
    };

    vec![invert, verify, sha]
}

/// Formats the primitive timings as the `"primitives"` JSON object
/// value (matching the hand-rolled JSON style of the figure binaries).
pub fn to_json(primitives: &[Primitive]) -> String {
    let entries: Vec<String> = primitives
        .iter()
        .map(|p| {
            format!(
                "    \"{}\": {{\"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.2}}}",
                p.name,
                p.before_ns,
                p.after_ns,
                p.speedup()
            )
        })
        .collect();
    format!("{{\n{}\n  }}", entries.join(",\n"))
}
