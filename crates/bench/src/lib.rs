//! The experiment harness behind the figure binaries (`fig12`–`fig15`)
//! and the Criterion benches.
//!
//! Each experiment matches the paper's setup (§6): a cluster of
//! database servers in one (simulated) datacenter, a
//! Transactional-YCSB-like workload of 5-operation read-modify-write
//! transactions over keys drawn from the union of all shards, 1000
//! client requests per run, and measurements of
//!
//! * **commit latency** — "time taken to terminate a transaction once
//!   the client sends end transaction request", amortized per
//!   transaction over the coordinator's protocol rounds, and
//! * **throughput** — committed transactions per second of wall time,
//! * **MHT update time** — Merkle maintenance per server per block
//!   (Figure 14's third series).
//!
//! Environment knobs: `FIDES_TXNS` (client requests per run, default
//! 1000), `FIDES_LATENCY_US` (one-way per-message latency, default
//! 500 µs — an intra-datacenter figure standing in for the paper's EC2
//! placement), `FIDES_RUNS` (averaging runs, default 1; the paper
//! averages 3).

pub mod primitives;

use std::time::{Duration, Instant};

use fides_core::messages::CommitProtocol;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_net::NetworkConfig;
use fides_workload::{WorkloadConfig, WorkloadGenerator};

/// Parameters of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentParams {
    /// Number of database servers (= shards).
    pub n_servers: u32,
    /// Items per shard (paper default: 10 000).
    pub items_per_shard: usize,
    /// Transactions per block.
    pub batch_size: usize,
    /// Total client requests (paper: 1000).
    pub n_txns: usize,
    /// Operations per transaction (paper: 5).
    pub ops_per_txn: usize,
    /// Commitment protocol.
    pub protocol: CommitProtocol,
    /// One-way per-message latency.
    pub latency: Duration,
}

impl ExperimentParams {
    /// The paper's base configuration, with overridable pieces.
    pub fn paper_base(n_servers: u32) -> Self {
        ExperimentParams {
            n_servers,
            items_per_shard: 10_000,
            batch_size: 100,
            n_txns: env_usize("FIDES_TXNS", 1000),
            ops_per_txn: 5,
            protocol: CommitProtocol::TfCommit,
            latency: Duration::from_micros(env_usize("FIDES_LATENCY_US", 150) as u64),
        }
    }
}

/// Measurements from one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentResult {
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted or failed.
    pub aborted: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Committed transactions per second of wall time.
    pub throughput_tps: f64,
    /// Per-transaction commit latency in milliseconds (coordinator
    /// round time / committed transactions).
    pub commit_latency_ms: f64,
    /// Average Merkle-maintenance time per server per block, in
    /// milliseconds (0 for 2PC, which keeps no trees).
    pub mht_update_ms: f64,
    /// Blocks appended to the log.
    pub blocks: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one experiment: builds the cluster, drives the workload from
/// `batch_size` concurrent clients, and collects the measurements.
pub fn run_experiment(params: &ExperimentParams) -> ExperimentResult {
    // Enough concurrent clients to keep the commit pipeline full: the
    // execution phase (signed per-item reads/writes) overlaps with the
    // coordinator's serialized protocol rounds. More clients than that
    // only add execution traffic that pads the measured rounds
    // (`FIDES_CLIENTS` overrides).
    let n_clients = env_usize("FIDES_CLIENTS", params.batch_size.clamp(6, 128)) as u32;
    let cluster = FidesCluster::start(
        ClusterConfig::new(params.n_servers)
            .items_per_shard(params.items_per_shard)
            .batch_size(params.batch_size)
            .protocol(params.protocol)
            .network(NetworkConfig::with_latency(params.latency))
            .max_clients(n_clients)
            // Long enough for a full batch of clients to submit, so
            // blocks actually carry `batch_size` transactions.
            .flush_interval(Duration::from_millis(25)),
    );

    // The full run is one conflict-free window, so every block commits
    // (the §4.6 "non-conflicting transactions" batching assumption).
    let mut generator = WorkloadGenerator::new(
        WorkloadConfig::paper_default(params.n_servers, params.items_per_shard)
            .ops_per_txn(params.ops_per_txn)
            .conflict_free_window(params.n_txns),
        FidesCluster::key_name,
    );

    let per_client = params.n_txns / n_clients as usize;
    let remainder = params.n_txns % n_clients as usize;

    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let mut client = cluster.client(c);
        let quota = per_client + usize::from((c as usize) < remainder);
        let specs = generator.take_txns(quota);
        handles.push(std::thread::spawn(move || {
            let mut committed = 0usize;
            let mut aborted = 0usize;
            for spec in specs {
                match client.run_rmw(&spec.keys, 1) {
                    Ok(outcome) if outcome.committed() => committed += 1,
                    _ => aborted += 1,
                }
            }
            (committed, aborted)
        }));
    }
    let mut committed = 0usize;
    let mut aborted = 0usize;
    for h in handles {
        let (c, a) = h.join().expect("client thread");
        committed += c;
        aborted += a;
    }
    cluster.flush();
    let blocks = cluster.settle(Duration::from_secs(10)).unwrap_or(0);
    let elapsed = start.elapsed();

    let rounds = cluster.round_stats();
    let commit_latency_ms = if rounds.committed_txns > 0 {
        (rounds.round_nanos as f64 / 1e6) / rounds.committed_txns as f64
    } else {
        f64::NAN
    };
    let mht = cluster.mht_stats();
    let mht_total_ms: f64 = mht.iter().map(|s| s.elapsed.as_secs_f64() * 1e3).sum();
    let mht_update_ms = if blocks > 0 {
        mht_total_ms / (params.n_servers as f64 * blocks as f64)
    } else {
        0.0
    };

    cluster.shutdown();
    ExperimentResult {
        committed,
        aborted,
        elapsed,
        throughput_tps: committed as f64 / elapsed.as_secs_f64(),
        commit_latency_ms,
        mht_update_ms,
        blocks,
    }
}

/// Runs `FIDES_RUNS` repetitions (default 1; the paper averages 3) and
/// averages the scalar metrics.
pub fn run_averaged(params: &ExperimentParams) -> ExperimentResult {
    let runs = env_usize("FIDES_RUNS", 1).max(1);
    let mut acc: Option<ExperimentResult> = None;
    for _ in 0..runs {
        let r = run_experiment(params);
        acc = Some(match acc {
            None => r,
            Some(a) => ExperimentResult {
                committed: a.committed + r.committed,
                aborted: a.aborted + r.aborted,
                elapsed: a.elapsed + r.elapsed,
                throughput_tps: a.throughput_tps + r.throughput_tps,
                commit_latency_ms: a.commit_latency_ms + r.commit_latency_ms,
                mht_update_ms: a.mht_update_ms + r.mht_update_ms,
                blocks: a.blocks + r.blocks,
            },
        });
    }
    let mut r = acc.expect("at least one run");
    let n = runs as f64;
    r.throughput_tps /= n;
    r.commit_latency_ms /= n;
    r.mht_update_ms /= n;
    r
}

/// Prints a figure header in a consistent format.
pub fn print_header(figure: &str, claim: &str, columns: &str) {
    println!("== {figure} ==");
    println!("paper claim: {claim}");
    println!("{columns}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end experiment proving the harness plumbing.
    #[test]
    fn harness_smoke() {
        let params = ExperimentParams {
            n_servers: 3,
            items_per_shard: 64,
            batch_size: 4,
            n_txns: 12,
            ops_per_txn: 2,
            protocol: CommitProtocol::TfCommit,
            latency: Duration::ZERO,
        };
        let result = run_experiment(&params);
        // The workload window is conflict-free, but whole batches can
        // still legitimately abort under scheduler pressure: a client's
        // end-txn races a concurrent block commit into the cohort-side
        // sequential-log rule (`t.id <= last_committed`, §4.3.1), which
        // aborts the batch. Require at least one full block to commit
        // end-to-end — that proves the harness plumbing — and account
        // for every transaction.
        assert_eq!(result.committed + result.aborted, 12, "{result:?}");
        // At most one batch's worth of scheduler-induced aborts.
        assert!(result.committed >= 8, "{result:?}");
        assert!(result.throughput_tps > 0.0);
        assert!(result.commit_latency_ms > 0.0);
        assert!(result.blocks >= 3);
        assert!(result.mht_update_ms > 0.0);
    }

    #[test]
    fn twopc_has_no_mht_cost() {
        let params = ExperimentParams {
            n_servers: 3,
            items_per_shard: 64,
            batch_size: 4,
            n_txns: 8,
            ops_per_txn: 2,
            protocol: CommitProtocol::TwoPhaseCommit,
            latency: Duration::ZERO,
        };
        let result = run_experiment(&params);
        assert_eq!(result.committed, 8);
        assert_eq!(result.mht_update_ms, 0.0);
    }
}
