//! End-to-end commit-protocol benches: miniature versions of the
//! figure experiments, runnable under `cargo bench` (the full sweeps
//! live in the `fig12`–`fig15` binaries).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fides_bench::{run_experiment, ExperimentParams};
use fides_core::messages::CommitProtocol;

/// Scaled-down run: zero network latency (pure protocol + crypto
/// cost), small shard, few transactions — measures the compute path
/// that differentiates TFCommit from 2PC (Figure 12's mechanism).
fn mini_params(protocol: CommitProtocol, batch: usize) -> ExperimentParams {
    ExperimentParams {
        n_servers: 5,
        items_per_shard: 1000,
        batch_size: batch,
        n_txns: 50,
        ops_per_txn: 5,
        protocol,
        latency: Duration::ZERO,
    }
}

fn bench_fig12_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit/fig12_mini");
    group.sample_size(10);
    for protocol in [CommitProtocol::TfCommit, CommitProtocol::TwoPhaseCommit] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{protocol}")),
            &protocol,
            |b, &protocol| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_experiment(&mini_params(protocol, 1));
                        // Charge only the protocol-round time, matching
                        // the paper's commit-latency metric.
                        total +=
                            Duration::from_secs_f64(r.commit_latency_ms * r.committed as f64 / 1e3);
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn bench_fig13_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit/fig13_mini_per_txn");
    group.sample_size(10);
    for batch in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = run_experiment(&mini_params(CommitProtocol::TfCommit, batch));
                    total +=
                        Duration::from_secs_f64(r.commit_latency_ms * r.committed as f64 / 1e3);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12_mechanism, bench_fig13_mechanism);
criterion_main!(benches);
