//! Merkle-tree micro-benchmarks — the mechanism behind Figures 14/15:
//! an incremental update touches `log₂ n` nodes, so the per-commit MHT
//! cost grows with shard size and shrinks per server as load spreads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fides_crypto::merkle::{hash_leaf, MerkleTree};

fn leaves(n: usize) -> Vec<fides_crypto::Digest> {
    (0..n)
        .map(|i| hash_leaf(&(i as u64).to_be_bytes()))
        .collect()
}

fn bench_incremental_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle/update_leaf");
    // The Figure 15 sweep: shard sizes 1k..10k.
    for n in [1000usize, 4000, 10_000] {
        let mut tree = MerkleTree::from_leaves(leaves(n));
        let fresh = hash_leaf(b"fresh");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                tree.update_leaf(i, fresh)
            })
        });
    }
    group.finish();
}

fn bench_rebuild_vs_update(c: &mut Criterion) {
    // Why incremental updates matter: a full rebuild is O(n), the
    // paper's per-txn update is O(log n).
    let n = 10_000;
    let base = leaves(n);
    let mut group = c.benchmark_group("merkle/rebuild");
    group.sample_size(10);
    group.bench_function("from_leaves/10000", |b| {
        b.iter(|| MerkleTree::from_leaves(std::hint::black_box(base.clone())))
    });
    group.finish();
}

fn bench_block_of_writes(c: &mut Criterion) {
    // One block's worth of MHT maintenance: 100 txns x 5 ops spread
    // over k shards means 500/k updates per shard — the Figure 14
    // effect.
    let mut group = c.benchmark_group("merkle/block_500_ops");
    group.sample_size(20);
    for k in [3usize, 5, 9] {
        let per_shard = 500 / k;
        let mut tree = MerkleTree::from_leaves(leaves(10_000));
        let fresh = hash_leaf(b"w");
        group.bench_with_input(
            BenchmarkId::new("per_shard_share", k),
            &per_shard,
            |b, &ops| {
                b.iter(|| {
                    for i in 0..ops {
                        tree.update_leaf((i * 101) % 10_000, fresh);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_update(c: &mut Criterion) {
    // A block's worth of writes against one shard: the batch API
    // recomputes each shared internal node once, per-leaf walks pay
    // the full path per leaf.
    let n = 10_000usize;
    let k = 100usize;
    let fresh = hash_leaf(b"batched");
    let updates: Vec<(usize, fides_crypto::Digest)> =
        (0..k).map(|i| ((i * 313) % n, fresh)).collect();
    let mut group = c.benchmark_group("merkle/batch_100_of_10000");
    group.bench_function("update_leaves", |b| {
        let mut tree = MerkleTree::from_leaves(leaves(n));
        b.iter(|| tree.update_leaves(std::hint::black_box(&updates)))
    });
    group.bench_function("per_leaf_loop", |b| {
        let mut tree = MerkleTree::from_leaves(leaves(n));
        b.iter(|| {
            let mut nodes = 0usize;
            for &(i, d) in std::hint::black_box(&updates) {
                nodes += tree.update_leaf(i, d);
            }
            nodes
        })
    });
    group.finish();
}

fn bench_proofs(c: &mut Criterion) {
    let tree = MerkleTree::from_leaves(leaves(10_000));
    let root = tree.root();
    let vo = tree.proof(1234);
    let leaf = tree.leaf(1234);
    let mut group = c.benchmark_group("merkle/proof");
    group.bench_function("generate/10000", |b| b.iter(|| tree.proof(1234)));
    group.bench_function("verify/10000", |b| {
        b.iter(|| vo.verify(std::hint::black_box(leaf), &root))
    });
    group.finish();
}

fn bench_multiproof(c: &mut Criterion) {
    // The verified read plane's per-key proof cost at batch sizes
    // 1/16/256: one multiproof with shared-path deduplication vs. one
    // verification object per key. Per-key cost falls as the batch
    // grows — shared ancestors are generated and hashed exactly once.
    let n = 10_000usize;
    let ls = leaves(n);
    let tree = MerkleTree::from_leaves(ls.clone());
    let root = tree.root();
    for k in [1usize, 16, 256] {
        let indices: Vec<usize> = (0..k).map(|i| (i * 37 + 11) % n).collect();
        let pairs: Vec<(u64, fides_crypto::Digest)> =
            indices.iter().map(|&i| (i as u64, ls[i])).collect();
        let proof = tree.multiproof(&indices);
        let vos: Vec<_> = indices.iter().map(|&i| tree.proof(i)).collect();

        let mut group = c.benchmark_group(format!("merkle/multiproof_k{k}_of_10000"));
        group.bench_function("generate", |b| {
            b.iter(|| tree.multiproof(std::hint::black_box(&indices)))
        });
        group.bench_function("verify", |b| {
            b.iter(|| proof.verify(std::hint::black_box(&pairs), &root))
        });
        group.bench_function("verify_per_key_vos", |b| {
            b.iter(|| {
                indices
                    .iter()
                    .zip(&vos)
                    .all(|(&i, vo)| vo.verify(std::hint::black_box(ls[i]), &root))
            })
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_incremental_update,
    bench_rebuild_vs_update,
    bench_block_of_writes,
    bench_batch_update,
    bench_proofs,
    bench_multiproof
);
criterion_main!(benches);
