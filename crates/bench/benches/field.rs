//! Field/point micro-benchmarks used to tune the verification engine.

use criterion::{criterion_group, criterion_main, Criterion};
use fides_crypto::field::FieldElement;
use fides_crypto::point::Point;
use fides_crypto::scalar::Scalar;

fn bench_field(c: &mut Criterion) {
    let a = FieldElement::from_be_bytes(&{
        let mut b = [0x5Au8; 32];
        b[0] = 0;
        b
    })
    .unwrap();
    let b = FieldElement::from_be_bytes(&{
        let mut b = [0xC3u8; 32];
        b[0] = 0;
        b
    })
    .unwrap();

    let mut group = c.benchmark_group("field");
    group.bench_function("mul", |bch| {
        let mut x = a;
        bch.iter(|| {
            x = x * b;
            x
        })
    });
    group.bench_function("square", |bch| {
        let mut x = a;
        bch.iter(|| {
            x = x.square();
            x
        })
    });
    group.bench_function("add", |bch| {
        let mut x = a;
        bch.iter(|| {
            x = x + b;
            x
        })
    });
    // The shipping safegcd divstep inversion vs the kept Fermat-ladder
    // reference — the pair behind BENCH_PR6.json's field_invert entry.
    group.bench_function("invert", |bch| {
        let mut x = a;
        bch.iter(|| {
            x = x.invert().expect("nonzero");
            x
        })
    });
    group.bench_function("invert_fermat", |bch| {
        let mut x = a;
        bch.iter(|| {
            x = x.invert_fermat().expect("nonzero");
            x
        })
    });
    group.finish();
}

fn bench_point(c: &mut Criterion) {
    let g = Point::generator();
    let p = g * Scalar::from_u64(12345);
    let q = g * Scalar::from_u64(99999);

    let mut group = c.benchmark_group("point");
    group.bench_function("double", |bch| {
        let mut x = p;
        bch.iter(|| {
            x = x.double();
            x
        })
    });
    group.bench_function("add", |bch| {
        let mut x = p;
        bch.iter(|| {
            x = x + q;
            x
        })
    });
    group.bench_function("mul_scalar", |bch| {
        let k = Scalar::from_be_bytes_reduced(&[0xA7u8; 32]);
        bch.iter(|| p.mul_scalar(&k))
    });
    group.bench_function("mul_generator", |bch| {
        let k = Scalar::from_be_bytes_reduced(&[0xA7u8; 32]);
        bch.iter(|| Point::mul_generator(&k))
    });
    group.finish();
}

criterion_group!(benches, bench_field, bench_point);
criterion_main!(benches);
