//! Write-ahead-log micro-benchmarks: append (group-commit) and
//! replay/recovery throughput of `fides-durability`.
//!
//! Appends are measured end-to-end — encode, frame, checksum, write,
//! flush — per block of `B` transactions, since one block is the
//! group-commit unit servers pay per round. Replay is measured both as
//! raw decode (open + CRC + block decode) and as the full verified
//! recovery path (hash chain + batched collective signatures).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fides_crypto::cosi::{self, Witness};
use fides_crypto::encoding::Encodable;
use fides_crypto::schnorr::KeyPair;
use fides_durability::testutil::TempDir;
use fides_durability::{recover_ledger, DurableLog, SyncPolicy, WalBlockLog, WalConfig};
use fides_ledger::block::{Block, BlockBuilder, Decision, TxnRecord};
use fides_ledger::log::TamperProofLog;
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::types::{Key, Timestamp, Value};

fn txn(ts: u64) -> TxnRecord {
    TxnRecord {
        id: Timestamp::new(ts, 0),
        read_set: vec![ReadEntry {
            key: Key::new(format!("item-{:06}", ts % 10_000)),
            value: Value::from_i64(100),
            rts: Timestamp::new(ts.saturating_sub(1), 0),
            wts: Timestamp::new(ts.saturating_sub(2), 0),
        }],
        write_set: vec![WriteEntry {
            key: Key::new(format!("item-{:06}", ts % 10_000)),
            new_value: Value::from_i64(ts as i64),
            old_value: Some(Value::from_i64(100)),
            rts: Timestamp::new(ts.saturating_sub(1), 0),
            wts: Timestamp::new(ts.saturating_sub(2), 0),
        }],
    }
}

/// An unsigned chain of `n` blocks with `batch` txns each.
fn chain(n: u64, batch: u64) -> Vec<Block> {
    let mut log = TamperProofLog::new();
    for h in 0..n {
        let block = BlockBuilder::new(h, log.tip_hash())
            .txns((0..batch).map(|i| txn(1 + h * batch + i)))
            .decision(Decision::Commit)
            .build_unsigned();
        log.append(block).expect("chain extends");
    }
    log.to_blocks()
}

/// A co-signed chain (for the verified-recovery benchmark).
fn signed_chain(n: u64, batch: u64, keys: &[KeyPair]) -> Vec<Block> {
    chain(n, batch)
        .into_iter()
        .map(|unsigned| {
            let record = unsigned.signing_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &unsigned.height.to_be_bytes(), &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            Block {
                cosign: sig,
                ..unsigned
            }
        })
        .collect()
}

fn wal_config(sync: SyncPolicy) -> WalConfig {
    WalConfig {
        segment_bytes: 8 * 1024 * 1024,
        sync,
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/append_block");
    for batch in [1u64, 100] {
        let blocks = chain(64, batch);
        let block_bytes = blocks[0].encode().len() as u64;
        group.throughput(Throughput::Bytes(block_bytes));
        for (label, sync) in [
            ("fsync", SyncPolicy::Batch),
            ("nofsync", SyncPolicy::NoFsync),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("txns={batch}"), label),
                &sync,
                |b, &sync| {
                    b.iter_custom(|iters| {
                        let dir = TempDir::new("bench-append");
                        let (mut wal, _) =
                            WalBlockLog::open(dir.path(), wal_config(sync)).expect("open");
                        let start = Instant::now();
                        for i in 0..iters {
                            let block = &blocks[(i % 64) as usize];
                            wal.append_block(block).expect("append");
                            wal.sync().expect("sync");
                        }
                        start.elapsed()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    // Raw decode throughput: open re-reads, CRC-checks and decodes the
    // whole WAL.
    let mut group = c.benchmark_group("wal/replay_decode");
    group.sample_size(20);
    for n in [256u64, 1024] {
        let dir = TempDir::new("bench-replay");
        let config = wal_config(SyncPolicy::NoFsync);
        let blocks = chain(n, 100);
        let mut bytes = 0u64;
        {
            let (mut wal, _) = WalBlockLog::open(dir.path(), config).expect("open");
            for b in &blocks {
                bytes += b.encode().len() as u64;
                wal.append_block(b).expect("append");
            }
            wal.sync().expect("sync");
        }
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (_, replayed) = WalBlockLog::open(dir.path(), config).expect("reopen");
                assert_eq!(replayed.len(), n as usize);
                replayed
            })
        });
    }
    group.finish();

    // Full verified recovery: decode + hash chain + batched cosigs.
    let mut group = c.benchmark_group("recovery/verified_replay");
    group.sample_size(10);
    let keys: Vec<KeyPair> = (0..3u8).map(|i| KeyPair::from_seed(&[i, 0x77])).collect();
    let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
    for n in [64u64, 256] {
        let dir = TempDir::new("bench-recover");
        let config = wal_config(SyncPolicy::NoFsync);
        {
            let (mut wal, _) = WalBlockLog::open(dir.path(), config).expect("open");
            for b in &signed_chain(n, 100, &keys) {
                wal.append_block(b).expect("append");
            }
            wal.sync().expect("sync");
        }
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let (_, blocks) = WalBlockLog::open(dir.path(), config).expect("reopen");
                    let recovered =
                        recover_ledger(blocks, None, &pks, true).expect("verified recovery");
                    assert_eq!(recovered.log.len(), n as usize);
                    total += start.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
