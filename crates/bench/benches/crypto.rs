//! Micro-benchmarks for the cryptographic substrate — the "additional
//! computations" the paper attributes to TFCommit vs 2PC (§6.1):
//! collective signing and hashing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fides_crypto::cosi::{self, CollectiveSignature, Witness};
use fides_crypto::schnorr::{self, BatchItem, KeyPair, PublicKey, Signature};
use fides_crypto::sha256::Sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest/{size}B"), |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
    // 64 Merkle-node-shaped messages (65 bytes: prefix + two child
    // digests) through the multi-lane path vs one-by-one scalar
    // digests — the hottest hash call site in block apply.
    let node_msgs: Vec<[u8; 65]> = (0..64u8)
        .map(|i| {
            let mut m = [0u8; 65];
            m[0] = 0x01;
            m[1..33].copy_from_slice(Sha256::digest(&[i]).as_bytes());
            m[33..].copy_from_slice(Sha256::digest(&[i, i]).as_bytes());
            m
        })
        .collect();
    let refs: Vec<&[u8]> = node_msgs.iter().map(|m| m.as_slice()).collect();
    group.throughput(Throughput::Elements(64));
    group.bench_function("digest_many/64x65B", |b| {
        b.iter(|| Sha256::digest_many(std::hint::black_box(&refs)))
    });
    group.bench_function("digest_sequential/64x65B", |b| {
        b.iter(|| {
            refs.iter()
                .map(|m| Sha256::digest(std::hint::black_box(m)))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a typical protocol message payload";
    let sig = kp.sign(msg);

    let mut group = c.benchmark_group("schnorr");
    group.sample_size(20);
    group.bench_function("sign", |b| b.iter(|| kp.sign(std::hint::black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| kp.public_key().verify(std::hint::black_box(msg), &sig))
    });
    // The kept pre-GLV full-width wNAF ladder — the "before" side of
    // BENCH_PR6.json's schnorr_verify entry.
    group.bench_function("verify_wnaf", |b| {
        b.iter(|| kp.public_key().verify_wnaf(std::hint::black_box(msg), &sig))
    });
    group.finish();
}

fn bench_schnorr_batch(c: &mut Criterion) {
    // 64 distinct signers/messages — the whole-log verification shape.
    let n = 64usize;
    let keys: Vec<KeyPair> = (0..n)
        .map(|i| KeyPair::from_seed(&[i as u8, 0xEE]))
        .collect();
    let messages: Vec<Vec<u8>> = (0..n)
        .map(|i| format!("protocol message {i}").into_bytes())
        .collect();
    let signed: Vec<(PublicKey, Signature)> = keys
        .iter()
        .zip(&messages)
        .map(|(kp, m)| (kp.public_key(), kp.sign(m)))
        .collect();
    let items: Vec<BatchItem<'_>> = signed
        .iter()
        .zip(&messages)
        .map(|(&(public_key, signature), message)| BatchItem {
            public_key,
            message,
            signature,
        })
        .collect();

    let mut group = c.benchmark_group("schnorr");
    group.sample_size(20);
    group.bench_function("verify_batch/64", |b| {
        b.iter(|| schnorr::verify_batch(std::hint::black_box(&items)))
    });
    // The baseline the batch is judged against: 64 one-by-one verifies.
    group.bench_function("verify_sequential/64", |b| {
        b.iter(|| {
            items.iter().all(|it| {
                it.public_key
                    .verify(std::hint::black_box(it.message), &it.signature)
            })
        })
    });
    group.finish();
}

fn bench_cosi_batch(c: &mut Criterion) {
    // 64 blocks co-signed by the same 5-server witness set — exactly
    // the validate_chain workload.
    let n_blocks = 64usize;
    let keys: Vec<KeyPair> = (0..5)
        .map(|i| KeyPair::from_seed(&[i as u8, 0xEF]))
        .collect();
    let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
    let records: Vec<Vec<u8>> = (0..n_blocks)
        .map(|h| format!("block #{h}").into_bytes())
        .collect();
    let sigs: Vec<CollectiveSignature> = records
        .iter()
        .enumerate()
        .map(|(h, record)| {
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &(h as u64).to_be_bytes(), record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let ch = cosi::challenge(&agg, record);
            cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&ch)))
        })
        .collect();
    let items: Vec<(&[u8], CollectiveSignature)> = records
        .iter()
        .map(Vec::as_slice)
        .zip(sigs.iter().copied())
        .collect();

    let mut group = c.benchmark_group("cosi");
    group.sample_size(20);
    group.bench_function("verify_batch/64", |b| {
        b.iter(|| cosi::verify_batch(std::hint::black_box(&items), &pks))
    });
    group.bench_function("verify_sequential/64", |b| {
        b.iter(|| {
            items
                .iter()
                .all(|(record, sig)| sig.verify(std::hint::black_box(record), &pks))
        })
    });
    group.finish();
}

fn bench_cosi(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosi");
    group.sample_size(10);
    for n in [3usize, 5, 9] {
        let keys: Vec<KeyPair> = (0..n).map(|i| KeyPair::from_seed(&[i as u8])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let record = b"block signing bytes";

        // The full round: commit, aggregate, challenge, respond,
        // assemble — everything TFCommit adds per block.
        group.bench_function(format!("full-round/n={n}"), |b| {
            b.iter(|| {
                let witnesses: Vec<Witness> = keys
                    .iter()
                    .map(|kp| Witness::commit(kp, b"round", record))
                    .collect();
                let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
                let ch = cosi::challenge(&agg, record);
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&ch)))
            })
        });

        // Verification cost is that of a single signature (§2.2).
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"round", record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let ch = cosi::challenge(&agg, record);
        let sig =
            cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&ch)));
        group.bench_function(format!("verify/n={n}"), |b| {
            b.iter(|| sig.verify(std::hint::black_box(record), &pks))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_schnorr,
    bench_schnorr_batch,
    bench_cosi,
    bench_cosi_batch
);
criterion_main!(benches);
