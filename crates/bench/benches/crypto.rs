//! Micro-benchmarks for the cryptographic substrate — the "additional
//! computations" the paper attributes to TFCommit vs 2PC (§6.1):
//! collective signing and hashing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fides_crypto::cosi::{self, Witness};
use fides_crypto::schnorr::KeyPair;
use fides_crypto::sha256::Sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest/{size}B"), |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a typical protocol message payload";
    let sig = kp.sign(msg);

    let mut group = c.benchmark_group("schnorr");
    group.sample_size(20);
    group.bench_function("sign", |b| b.iter(|| kp.sign(std::hint::black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| kp.public_key().verify(std::hint::black_box(msg), &sig))
    });
    group.finish();
}

fn bench_cosi(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosi");
    group.sample_size(10);
    for n in [3usize, 5, 9] {
        let keys: Vec<KeyPair> = (0..n).map(|i| KeyPair::from_seed(&[i as u8])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let record = b"block signing bytes";

        // The full round: commit, aggregate, challenge, respond,
        // assemble — everything TFCommit adds per block.
        group.bench_function(format!("full-round/n={n}"), |b| {
            b.iter(|| {
                let witnesses: Vec<Witness> = keys
                    .iter()
                    .map(|kp| Witness::commit(kp, b"round", record))
                    .collect();
                let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
                let ch = cosi::challenge(&agg, record);
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&ch)))
            })
        });

        // Verification cost is that of a single signature (§2.2).
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"round", record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let ch = cosi::challenge(&agg, record);
        let sig =
            cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&ch)));
        group.bench_function(format!("verify/n={n}"), |b| {
            b.iter(|| sig.verify(std::hint::black_box(record), &pks))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_schnorr, bench_cosi);
criterion_main!(benches);
