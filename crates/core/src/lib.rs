//! Fides core: auditable transaction management on untrusted
//! infrastructure (paper §3–§5).
//!
//! This crate assembles the substrates (`fides-crypto`, `fides-store`,
//! `fides-net`, `fides-ledger`) into the full system:
//!
//! * [`messages`] — the signed protocol messages exchanged between
//!   clients, cohorts and the coordinator,
//! * [`partition`] — the key → server partition map,
//! * [`occ`] — commit-time timestamp-ordering validation (§4.3.1),
//! * [`behavior`] — fault-injection switches modelling every malicious
//!   behaviour of §3.2/§5,
//! * [`server`] — the database server: execution layer, commitment
//!   layer (TFCommit cohort + coordinator, plus the trusted 2PC
//!   baseline of §6.1), datastore and log,
//! * [`client`] — client sessions executing the transaction life-cycle
//!   of Figure 5,
//! * [`audit`] — the offline auditor implementing Lemmas 1–7,
//! * [`recovery`] — persistence configuration and the verified crash
//!   recovery path (WAL + snapshot restart via `fides-durability`),
//! * [`repair`] — the repair plane: verified anti-entropy state
//!   transfer for lagging or restarted servers (gap detection, block
//!   and checkpoint transfer, Byzantine-refuting verification),
//! * [`system`] — the cluster harness used by tests, examples and the
//!   benchmark suite,
//! * [`telemetry`] — the per-server metric bundle: commit-round stage
//!   timers, durability/read/repair counters and the structured event
//!   ring (built on `fides-telemetry`).
//!
//! # Quick start
//!
//! ```
//! use fides_core::system::{ClusterConfig, FidesCluster};
//! use fides_store::{Key, Value};
//!
//! // Three servers, four preloaded items per shard, one txn per block.
//! let config = ClusterConfig::new(3).items_per_shard(4);
//! let cluster = FidesCluster::start(config);
//! let mut client = cluster.client(0);
//!
//! let key = cluster.key_of(0, 0); // first item of server 0's shard
//! let mut txn = client.begin();
//! let read = client.read(&mut txn, &key).unwrap();
//! client.write(&mut txn, &key, Value::from_i64(42)).unwrap();
//! let outcome = client.commit(txn).unwrap();
//! assert!(outcome.committed());
//!
//! let report = cluster.audit();
//! assert!(report.is_clean());
//! cluster.shutdown();
//! # let _ = read;
//! ```

pub mod audit;
pub mod behavior;
pub mod client;
pub mod messages;
pub mod occ;
pub mod partition;
pub mod recovery;
pub mod repair;
pub mod server;
pub mod system;
pub mod telemetry;

pub use audit::{AuditReport, Auditor, Violation, ViolationKind};
pub use behavior::Behavior;
pub use client::{
    finalize_outcomes, ClientSession, PendingCommit, ReadStats, TxnCtx, TxnOutcome,
    UnverifiedOutcome,
};
pub use fides_read::{ReadConsistency, ReadEvidence, ReadFault};
pub use messages::{CommitProtocol, Message, ReadRefusal, TxnHandle};
pub use partition::Partitioner;
pub use recovery::{
    Durability, MemoryCluster, PersistenceBackend, PersistenceConfig, ServerStartError,
};
pub use repair::{RepairEvidence, RepairFault};
pub use system::{ClusterConfig, FidesCluster};
pub use telemetry::ServerTelemetry;
