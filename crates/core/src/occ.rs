//! Commit-time timestamp-ordering validation (paper §4.3.1).
//!
//! "Similar to timestamp based optimistic concurrency control, at commit
//! time a server checks if the data accessed in the terminating
//! transaction has been updated since they were read. If yes, the server
//! chooses to abort the transaction."
//!
//! The conflict taxonomy follows Lemma 3:
//!
//! * **RW-conflict** — a transaction with a smaller timestamp read a
//!   data item with a larger (write) timestamp;
//! * **WW-conflict** — a transaction with a smaller timestamp wrote a
//!   data item already updated with a larger timestamp;
//! * **WR-conflict** — a transaction with a smaller timestamp wrote a
//!   data item after it was read by a transaction with a larger
//!   timestamp.
//!
//! The same rules run in two places: cohorts validate their shard's
//! slice of every block before voting, and the auditor re-validates the
//! whole history during replay (Lemma 3).

use core::fmt;

use fides_ledger::block::TxnRecord;
use fides_store::types::{ItemState, Key, Timestamp};

/// The kind of serializability conflict detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Read a stale version: the item's write timestamp moved past the
    /// value the transaction observed.
    StaleRead,
    /// RW: the transaction's timestamp is below the item's write
    /// timestamp at commit time.
    ReadWrite,
    /// WW: write below the item's current write timestamp.
    WriteWrite,
    /// WR: write below the item's current read timestamp.
    WriteRead,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::StaleRead => write!(f, "stale read (item updated since read)"),
            ConflictKind::ReadWrite => write!(f, "RW-conflict"),
            ConflictKind::WriteWrite => write!(f, "WW-conflict"),
            ConflictKind::WriteRead => write!(f, "WR-conflict"),
        }
    }
}

/// A validation failure: which key conflicted and how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicted item.
    pub key: Key,
    /// The conflict class.
    pub kind: ConflictKind,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.kind, self.key)
    }
}

/// Validates one transaction against the current state of the items it
/// accessed, restricted to keys for which `lookup` returns state (a
/// cohort passes its shard; the auditor passes the replayed global
/// state).
///
/// Returns all conflicts found (empty = the transaction serializes).
pub fn validate_txn<F>(txn: &TxnRecord, lookup: F) -> Vec<Conflict>
where
    F: Fn(&Key) -> Option<ItemState>,
{
    let ts = txn.id;
    let mut conflicts = Vec::new();

    for read in &txn.read_set {
        let Some(cur) = lookup(&read.key) else {
            continue;
        };
        // The value the client observed must still be current: if the
        // item's wts moved past the wts recorded at read time, someone
        // committed a write in between.
        if cur.wts > read.wts {
            conflicts.push(Conflict {
                key: read.key.clone(),
                kind: ConflictKind::StaleRead,
            });
        }
        // RW: reading "from the future" relative to our own timestamp.
        if cur.wts > ts {
            conflicts.push(Conflict {
                key: read.key.clone(),
                kind: ConflictKind::ReadWrite,
            });
        }
    }

    for write in &txn.write_set {
        let Some(cur) = lookup(&write.key) else {
            continue;
        };
        if cur.wts > ts {
            conflicts.push(Conflict {
                key: write.key.clone(),
                kind: ConflictKind::WriteWrite,
            });
        }
        if cur.rts > ts {
            conflicts.push(Conflict {
                key: write.key.clone(),
                kind: ConflictKind::WriteRead,
            });
        }
    }

    conflicts
}

/// Validates a batch in timestamp order against a base state plus the
/// effects of earlier transactions in the batch — what a cohort does
/// for a multi-transaction block (§4.6). Returns the ids of failing
/// transactions (empty = vote commit).
pub fn validate_batch<F>(txns: &[TxnRecord], base_lookup: F) -> Vec<Timestamp>
where
    F: Fn(&Key) -> Option<ItemState>,
{
    use std::collections::HashMap;
    // Overlay of effects from earlier txns in the batch.
    let mut overlay: HashMap<Key, ItemState> = HashMap::new();
    let mut failed = Vec::new();

    for txn in txns {
        let conflicts = validate_txn(txn, |key| {
            overlay.get(key).cloned().or_else(|| base_lookup(key))
        });
        if conflicts.is_empty() {
            // Apply effects to the overlay.
            for read in &txn.read_set {
                if let Some(mut st) = overlay
                    .get(&read.key)
                    .cloned()
                    .or_else(|| base_lookup(&read.key))
                {
                    if txn.id > st.rts {
                        st.rts = txn.id;
                    }
                    overlay.insert(read.key.clone(), st);
                }
            }
            for write in &txn.write_set {
                let mut st = overlay
                    .get(&write.key)
                    .cloned()
                    .or_else(|| base_lookup(&write.key))
                    .unwrap_or_else(|| ItemState::initial(write.new_value.clone()));
                st.value = write.new_value.clone();
                if txn.id > st.wts {
                    st.wts = txn.id;
                }
                if txn.id > st.rts {
                    st.rts = txn.id;
                }
                overlay.insert(write.key.clone(), st);
            }
        } else {
            failed.push(txn.id);
        }
    }
    failed
}

/// [`validate_batch`], with per-transaction validation fanned out over
/// the process-wide thread pool.
///
/// The coordinator batches only **non-conflicting** transactions
/// (§4.6), so in the common case no transaction in the batch can see
/// another's overlay effects — each one validates independently against
/// the base state, in parallel, with the failed-id list still in batch
/// order. Batches that *do* share keys (e.g. replayed audit input) fall
/// back to the sequential overlay path, so the result is always
/// identical to [`validate_batch`].
pub fn validate_batch_parallel<F>(txns: &[TxnRecord], base_lookup: F) -> Vec<Timestamp>
where
    F: Fn(&Key) -> Option<ItemState> + Sync,
{
    use std::collections::HashSet;
    /// Below this many transactions the fork/join overhead dominates.
    const PARALLEL_MIN_TXNS: usize = 16;
    if txns.len() < PARALLEL_MIN_TXNS {
        return validate_batch(txns, base_lookup);
    }
    // Cross-transaction key-disjointness check (keys may repeat within
    // one transaction — a read-modify-write — without forcing the
    // sequential path).
    let mut seen: HashSet<&Key> = HashSet::new();
    for txn in txns {
        let mut mine: HashSet<&Key> = HashSet::new();
        let keys = txn
            .read_set
            .iter()
            .map(|r| &r.key)
            .chain(txn.write_set.iter().map(|w| &w.key));
        for key in keys {
            if mine.insert(key) && seen.contains(key) {
                return validate_batch(txns, base_lookup);
            }
        }
        seen.extend(mine);
    }
    let verdicts = rayon::parallel_map(txns, |txn| validate_txn(txn, &base_lookup).is_empty());
    txns.iter()
        .zip(verdicts)
        .filter(|(_, ok)| !ok)
        .map(|(txn, _)| txn.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_store::rwset::{ReadEntry, WriteEntry};
    use fides_store::types::Value;

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    fn item(value: i64, rts: u64, wts: u64) -> ItemState {
        ItemState {
            value: Value::from_i64(value),
            rts: ts(rts),
            wts: ts(wts),
        }
    }

    fn read(key: &str, rts: u64, wts: u64) -> ReadEntry {
        ReadEntry {
            key: Key::new(key),
            value: Value::from_i64(0),
            rts: ts(rts),
            wts: ts(wts),
        }
    }

    fn write(key: &str) -> WriteEntry {
        WriteEntry {
            key: Key::new(key),
            new_value: Value::from_i64(1),
            old_value: None,
            rts: Timestamp::ZERO,
            wts: Timestamp::ZERO,
        }
    }

    fn txn(id: u64, reads: Vec<ReadEntry>, writes: Vec<WriteEntry>) -> TxnRecord {
        TxnRecord {
            id: ts(id),
            read_set: reads,
            write_set: writes,
        }
    }

    #[test]
    fn clean_txn_validates() {
        let t = txn(100, vec![read("x", 50, 40)], vec![write("x")]);
        let conflicts = validate_txn(&t, |_| Some(item(0, 50, 40)));
        assert!(conflicts.is_empty());
    }

    #[test]
    fn stale_read_detected() {
        // Item was written at 60 after the txn read version 40.
        let t = txn(100, vec![read("x", 50, 40)], vec![]);
        let conflicts = validate_txn(&t, |_| Some(item(0, 50, 60)));
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::StaleRead);
    }

    #[test]
    fn rw_conflict_detected() {
        // Txn at ts 100 read an item whose current wts is 150.
        let t = txn(100, vec![read("x", 0, 150)], vec![]);
        let conflicts = validate_txn(&t, |_| Some(item(0, 0, 150)));
        assert!(conflicts.iter().any(|c| c.kind == ConflictKind::ReadWrite));
    }

    #[test]
    fn ww_conflict_detected() {
        let t = txn(100, vec![], vec![write("x")]);
        let conflicts = validate_txn(&t, |_| Some(item(0, 0, 150)));
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::WriteWrite);
    }

    #[test]
    fn wr_conflict_detected() {
        // Someone with ts 150 already read the item; writing at 100 would
        // invalidate their read.
        let t = txn(100, vec![], vec![write("x")]);
        let conflicts = validate_txn(&t, |_| Some(item(0, 150, 50)));
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::WriteRead);
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let t = txn(100, vec![read("x", 0, 0)], vec![write("y")]);
        let conflicts = validate_txn(&t, |_| None);
        assert!(conflicts.is_empty());
    }

    #[test]
    fn batch_applies_earlier_effects() {
        // T1 (ts 10) writes x; T2 (ts 20) reads x at T1's version — OK.
        let t1 = txn(10, vec![], vec![write("x")]);
        let mut r = read("x", 0, 10);
        r.value = Value::from_i64(1);
        let t2 = txn(20, vec![r], vec![]);
        let failed = validate_batch(&[t1, t2], |_| Some(item(0, 0, 0)));
        assert!(failed.is_empty());
    }

    #[test]
    fn batch_detects_intra_batch_stale_read() {
        // T1 (ts 10) writes x; T2 (ts 20) read x before T1 (wts 0): stale.
        let t1 = txn(10, vec![], vec![write("x")]);
        let t2 = txn(20, vec![read("x", 0, 0)], vec![]);
        let failed = validate_batch(&[t1, t2], |_| Some(item(0, 0, 0)));
        assert_eq!(failed, vec![ts(20)]);
    }

    #[test]
    fn batch_failure_does_not_poison_later_txns() {
        // T1 fails (stale read); T2 on a different key passes.
        let t1 = txn(10, vec![read("x", 0, 0)], vec![]);
        let t2 = txn(20, vec![read("y", 0, 5)], vec![]);
        let failed = validate_batch(&[t1, t2], |key| {
            if key.as_str() == "x" {
                Some(item(0, 0, 7)) // x moved past the read
            } else {
                Some(item(0, 0, 5))
            }
        });
        assert_eq!(failed, vec![ts(10)]);
    }

    #[test]
    fn parallel_batch_matches_sequential_on_disjoint_keys() {
        // 32 key-disjoint RMW transactions (each reads and writes its own
        // key), every fourth one stale — the parallel fast path must
        // report exactly the same failures in the same order.
        let txns: Vec<TxnRecord> = (0..32)
            .map(|i| {
                let key = format!("k{i}");
                let wts = if i % 4 == 0 { 5 } else { 0 };
                txn(
                    100 + i,
                    vec![read(&key, 0, wts)],
                    vec![WriteEntry {
                        key: Key::new(&key),
                        new_value: Value::from_i64(1),
                        old_value: None,
                        rts: ts(0),
                        wts: ts(wts),
                    }],
                )
            })
            .collect();
        // Base state: every item was rewritten at ts 5, so reads that
        // observed wts 0 are stale.
        let lookup = |_: &Key| Some(item(0, 0, 5));
        let sequential = validate_batch(&txns, lookup);
        let parallel = validate_batch_parallel(&txns, lookup);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.len(), 24, "three of every four observed wts 5");
    }

    #[test]
    fn parallel_batch_falls_back_on_shared_keys() {
        // T1 writes x, T17 reads x at T1's version: only the sequential
        // overlay path can validate T17, and the parallel entry point
        // must take it (16+ txns to clear the threshold).
        let mut txns: Vec<TxnRecord> = (0..16)
            .map(|i| txn(10 + i, vec![read(&format!("d{i}"), 0, 0)], vec![]))
            .collect();
        txns.insert(0, txn(5, vec![], vec![write("x")]));
        let mut r = read("x", 0, 5);
        r.value = Value::from_i64(1);
        txns.push(txn(50, vec![r], vec![]));
        let lookup = |_: &Key| Some(item(0, 0, 0));
        assert_eq!(
            validate_batch_parallel(&txns, lookup),
            validate_batch(&txns, lookup)
        );
        assert!(validate_batch_parallel(&txns, lookup).is_empty());
    }

    #[test]
    fn conflict_display_nonempty() {
        let c = Conflict {
            key: Key::new("x"),
            kind: ConflictKind::WriteWrite,
        };
        assert!(c.to_string().contains("WW"));
    }
}
