//! Protocol messages.
//!
//! Every message travels inside a signed [`fides_net::Envelope`]; this
//! module defines the payloads and their canonical encodings. The
//! TFCommit phases (paper Figure 7) map to message pairs:
//!
//! | phase | message |
//! |-------|---------|
//! | `<GetVote, SchAnnouncement>` | [`Message::GetVote`] |
//! | `<Vote, SchCommitment>`      | [`Message::Vote`] |
//! | `<null, SchChallenge>`       | [`Message::Challenge`] |
//! | `<null, SchResponse>`        | [`Message::Response`] |
//! | `<Decision, null>`           | [`Message::Decision`] |
//!
//! The 2PC baseline (§6.1) uses the `TwoPc*` variants.

use core::fmt;

use fides_crypto::cosi;
use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::scalar::Scalar;
use fides_durability::ShardSnapshot;
use fides_ledger::block::{Block, BlockHeader, TxnRecord};
use fides_store::proofs::ShardReadProof;
use fides_store::types::{Key, Timestamp, Value};

/// Which atomic commitment protocol a cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CommitProtocol {
    /// TrustFree Commit — 2PC fused with CoSi (the paper's contribution).
    #[default]
    TfCommit,
    /// Plain trusted Two-Phase Commit (the §6.1 baseline).
    TwoPhaseCommit,
}

impl fmt::Display for CommitProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitProtocol::TfCommit => write!(f, "TFCommit"),
            CommitProtocol::TwoPhaseCommit => write!(f, "2PC"),
        }
    }
}

/// Client-side provisional transaction identity, used to correlate
/// execution-phase messages before the commit timestamp is assigned.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TxnHandle {
    /// The issuing client's id.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
}

impl fmt::Display for TxnHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn-c{}-{}", self.client, self.seq)
    }
}

/// The partially-filled block broadcast in the `<GetVote>` phase:
/// commit timestamps, read/write sets and the previous-block hash
/// (Figure 7, leftmost block state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialBlock {
    /// Chain position the block will occupy.
    pub height: u64,
    /// The batched transactions (sorted by commit timestamp).
    pub txns: Vec<TxnRecord>,
    /// Hash of the previous block.
    pub prev_hash: fides_crypto::Digest,
}

/// A cohort's involvement-specific vote contents (only sent by cohorts
/// whose shard is accessed by the block, §4.3.1 phase 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvolvedVote {
    /// `true` → commit, `false` → abort.
    pub commit: bool,
    /// The speculative Merkle root (present iff `commit`).
    pub root: Option<fides_crypto::Digest>,
    /// Ids of transactions that failed local validation (abort votes).
    pub failed: Vec<Timestamp>,
}

/// Why a cohort refused to produce a Schnorr response in phase 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// A commit block is missing roots of involved servers.
    MissingRoots,
    /// The cohort's own root in the block differs from what it sent.
    RootMismatch,
    /// The coordinator's challenge does not hash to `H(X ‖ block)`.
    BadChallenge,
    /// An abort block carries a full root set (or other decision
    /// inconsistency).
    DecisionInconsistent,
    /// The round targets a height this cohort's log already holds — a
    /// stale (e.g. restarted-short) or equivocating coordinator trying
    /// to co-sign a second block at an occupied height. Refusing keeps
    /// an honest cohort from ever signing a fork.
    StaleHeight,
    /// Under rotating leadership the challenge came from a server that
    /// is not `height % n` — the designated leader for that height.
    /// Refusing extends the double-sign guard to rotation: even a
    /// Byzantine server that races the schedule cannot gather a full
    /// co-signature out of turn.
    WrongLeader,
}

impl fmt::Display for Refusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refusal::MissingRoots => write!(f, "commit block is missing involved roots"),
            Refusal::RootMismatch => write!(f, "own root was replaced in the block"),
            Refusal::BadChallenge => write!(f, "challenge does not match H(X || block)"),
            Refusal::DecisionInconsistent => write!(f, "decision inconsistent with roots"),
            Refusal::StaleHeight => write!(f, "round height already occupied in this log"),
            Refusal::WrongLeader => write!(f, "challenge from a non-leader for this height"),
        }
    }
}

/// A protocol message (the payload of a signed envelope).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // ------------------------------------------------------------------
    // Transaction execution (client ↔ server), Figure 5 steps 1–3.
    // ------------------------------------------------------------------
    /// Step 1: client announces a transaction to an involved server.
    Begin { txn: TxnHandle },
    /// Step 2: read request for one item.
    Read { txn: TxnHandle, key: Key },
    /// Step 3: read response with the item's value and timestamps.
    ReadResp {
        txn: TxnHandle,
        key: Key,
        value: Value,
        rts: Timestamp,
        wts: Timestamp,
    },
    /// The requested key is not stored on this server.
    ReadErr { txn: TxnHandle, key: Key },
    /// Step 2: buffered write request.
    Write {
        txn: TxnHandle,
        key: Key,
        value: Value,
    },
    /// Step 3: write acknowledgement; carries the pre-image and
    /// timestamps for blind writes (§4.2.1).
    WriteAck {
        txn: TxnHandle,
        key: Key,
        /// `(old value, rts, wts)` — `None` when the key is unknown to
        /// this server (a fresh insert).
        old: Option<(Value, Timestamp, Timestamp)>,
    },

    // ------------------------------------------------------------------
    // Termination (client → coordinator), Figure 5 step 4.
    // ------------------------------------------------------------------
    /// `end_transaction(Tid, ts, Rset-Wset)` — the signed client request
    /// the coordinator encapsulates into the block.
    EndTxn {
        handle: TxnHandle,
        record: TxnRecord,
    },
    /// The coordinator refused the request (stale timestamp); the client
    /// should retry with a timestamp above `hint`.
    EndTxnRejected { handle: TxnHandle, hint: Timestamp },
    /// Server-to-server forwarding of a pending [`Message::EndTxn`]
    /// under rotating leadership: a server holding client requests that
    /// is not the leader for the frontier height hands them to the
    /// server that is, preserving the original client identity so the
    /// new leader can route the outcome. Keeps the chain live when
    /// clients (by staleness or crash timing) target the wrong leader.
    EndTxnFwd {
        /// Raw node id of the client that issued the transaction.
        client: u32,
        handle: TxnHandle,
        record: TxnRecord,
    },
    /// Final outcome: the signed block containing the client's
    /// transaction(s) — one message resolves **every** commit this
    /// client had in the block, so the coordinator signs (and the
    /// client verifies) the multi-kilobyte block once per client
    /// instead of once per transaction. The client verifies the
    /// collective signature before accepting (§4.3.1 phase 5).
    Outcome {
        handles: Vec<TxnHandle>,
        block: Block,
    },

    // ------------------------------------------------------------------
    // TFCommit (coordinator ↔ cohorts), §4.3.1.
    // ------------------------------------------------------------------
    /// A batched read: every key this transaction needs from one
    /// server, in one signed message — the execution layer's
    /// counterpart of block batching (one signature amortized over the
    /// whole per-server key set).
    ReadMany { txn: TxnHandle, keys: Vec<Key> },
    /// Response to [`Message::ReadMany`]: per key, the item state or
    /// `None` for an unknown key.
    ReadManyResp {
        txn: TxnHandle,
        items: Vec<ReadManyItem>,
    },

    /// Phase 1 `<GetVote, SchAnnouncement>`.
    GetVote { partial: PartialBlock },
    /// Phase 2 `<Vote, SchCommitment>`.
    Vote {
        height: u64,
        commitment: cosi::Commitment,
        involved: Option<InvolvedVote>,
    },
    /// Phase 3 `<null, SchChallenge>`: the filled (unsigned) block, the
    /// aggregate commitment `X` and the challenge `ch = H(X ‖ block)`.
    Challenge {
        block: Block,
        aggregate: cosi::Commitment,
        challenge: Scalar,
    },
    /// Phase 4 `<null, SchResponse>`.
    Response {
        height: u64,
        result: Result<cosi::Response, Refusal>,
    },
    /// Phase 5 `<Decision, null>`: the finalized, collectively signed
    /// block.
    Decision { block: Block },

    // ------------------------------------------------------------------
    // Two-Phase Commit baseline (§6.1).
    // ------------------------------------------------------------------
    /// 2PC vote request with the proposed block.
    TwoPcGetVote { partial: PartialBlock },
    /// 2PC vote.
    TwoPcVote {
        height: u64,
        commit: bool,
        failed: Vec<Timestamp>,
    },
    /// 2PC decision broadcast.
    TwoPcDecision { block: Block },

    // ------------------------------------------------------------------
    // Repair plane (anti-entropy state transfer, server ↔ server).
    //
    // A lagging or freshly-restarted server detects its gap, fetches
    // missing decision blocks — or a checkpoint + log suffix when peers
    // have pruned — and re-verifies everything (batched collective
    // signatures, hash-chain anchoring, shard-root cross-checks) before
    // applying a single byte. A peer serving garbage is refuted and
    // reported as audit evidence.
    // ------------------------------------------------------------------
    /// "Where are you?" — carries the sender's own tip so the exchange
    /// doubles as gossip: a peer that is itself behind learns it here.
    RepairQuery {
        /// The sender's next log height.
        next_height: u64,
    },
    /// Answer to [`Message::RepairQuery`].
    RepairInfo {
        /// The responder's next log height (its tip).
        next_height: u64,
        /// The responder's tip hash — lets a server that provisionally
        /// adopted a snapshot ahead of its torn WAL confirm the
        /// adoption against a peer at the same height.
        tip_hash: fides_crypto::Digest,
        /// Lowest height the responder can serve blocks from (its
        /// in-memory log base; lower if its archive reaches further).
        base_height: u64,
        /// Height of the checkpoint mirror the responder holds for the
        /// *requester*, if any — the bulk-transfer fallback.
        mirror_height: Option<u64>,
    },
    /// Fetch up to `max` decision blocks starting at height `from`.
    RepairRequest {
        /// First height wanted.
        from: u64,
        /// Chunk-size cap.
        max: u32,
    },
    /// One chunk of transferred blocks. An empty chunk with
    /// `base_height > from` means the responder pruned that history
    /// (fall back to a checkpoint); an empty chunk otherwise means the
    /// responder has nothing newer.
    RepairBlocks {
        /// The height the requester asked for.
        from: u64,
        /// The served blocks (consecutive from `from` when non-empty).
        blocks: Vec<Block>,
        /// Lowest height the responder can serve.
        base_height: u64,
        /// The responder's tip (lets the requester track a moving
        /// target).
        next_height: u64,
    },
    /// Ask the peer for the checkpoint mirror of the **requester's own
    /// shard** (served when the requester restarted below every peer's
    /// pruned-WAL floor).
    RepairCheckpointRequest,
    /// The mirrored checkpoint, or `None` when the peer holds none.
    RepairCheckpoint {
        /// The requester's own shard image, as last mirrored.
        snapshot: Option<Box<ShardSnapshot>>,
    },
    /// Broadcast after a server saves a snapshot: peers persist the
    /// mirror so the origin's shard state stays recoverable even after
    /// the cluster prunes its WALs below the snapshot (quorum-durable
    /// checkpoints — the precondition that makes pruning safe
    /// fleet-wide).
    CheckpointMirror {
        /// The origin's shard image.
        snapshot: Box<ShardSnapshot>,
    },

    // ------------------------------------------------------------------
    // Verified read plane (client ↔ any server).
    //
    // Read-only transactions never enter a commit round: the client
    // asks one server for a proof-carrying snapshot read, verifies the
    // multiproof/absence proofs against a cached co-signed root, and
    // is done. Any peer holding a verified checkpoint mirror of another
    // server's shard serves (stale-bounded) reads for it.
    // ------------------------------------------------------------------
    /// A batched proof-carrying read of `keys` (all owned by `shard`).
    /// The server must serve state current through at least
    /// `min_covered` applied blocks (an honest server refuses
    /// otherwise); `at_height` pins an exact snapshot instead.
    SnapshotRead {
        /// Client-local request id (correlates the response).
        req: u64,
        /// The shard the keys belong to.
        shard: u32,
        /// The keys to read.
        keys: Vec<Key>,
        /// Minimum applied height the served state must cover.
        min_covered: u64,
        /// Serve state exactly as of this applied height (`AtHeight`).
        at_height: Option<u64>,
    },
    /// The proof-carrying answer: values + multiproof + absence proofs
    /// anchored at the co-signed root of applied height `root_height`
    /// (0 = genesis), optionally with the co-signed header proving that
    /// root to a client that has not cached it.
    SnapshotReadResp {
        /// Echo of the request id.
        req: u64,
        /// The shard read.
        shard: u32,
        /// Applied height of the anchoring co-signed root.
        root_height: u64,
        /// Applied height the served state is current through.
        covered_height: u64,
        /// The co-signed root carrier (`None` = genesis or
        /// client-cached).
        header: Option<Box<BlockHeader>>,
        /// The proof bundle (values ride inside).
        proof: Box<ShardReadProof>,
    },
    /// The server cannot serve the read under the requested policy —
    /// an *honest* refusal carrying a retargeting hint, never evidence.
    SnapshotReadRefused {
        /// Echo of the request id.
        req: u64,
        /// Why, plus how the client should retarget.
        reason: ReadRefusal,
    },
    /// Ask a server for recent co-signed block headers (the pull side
    /// of the lightweight root announcement): headers at or above
    /// `from`, newest first, capped.
    RootQuery {
        /// Lowest applied height of interest.
        from: u64,
    },
    /// Answer to [`Message::RootQuery`]: enough recent headers to cover
    /// the newest co-signed root of every shard (clients verify each
    /// header's collective signature before trusting it).
    RootAnnounce {
        /// The served headers.
        headers: Vec<BlockHeader>,
    },

    // ------------------------------------------------------------------
    // Quorum-durable acknowledgements (cohort → coordinator).
    // ------------------------------------------------------------------
    /// The sending cohort's copy of block `height` is fsync-durable.
    /// With `PersistenceConfig::quorum_acks` the coordinator withholds
    /// client outcomes until a quorum of servers (itself included)
    /// reports this.
    Durable {
        /// The durable block's height.
        height: u64,
    },

    // ------------------------------------------------------------------
    // Harness control.
    // ------------------------------------------------------------------
    /// Ask the coordinator to terminate whatever is pending now.
    Flush,
    /// Ask a server thread to exit.
    Shutdown,
}

/// One entry of a [`Message::ReadManyResp`]: the key and, when the
/// server stores it, its `(value, rts, wts)` state.
pub type ReadManyItem = (Key, Option<(Value, Timestamp, Timestamp)>);

/// Why a server honestly refused a [`Message::SnapshotRead`] — always a
/// retargeting hint, never evidence (a *Byzantine* server serves a bad
/// response instead, and the client's verification refutes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadRefusal {
    /// The server is mid-repair and cannot serve trustworthy reads;
    /// retry (or retarget) after roughly `eta_hint_ms` — the
    /// repair-aware retry hint that keeps clients from burning their
    /// op-timeout against a repairing server.
    Repairing {
        /// Coarse estimate of the remaining repair time.
        eta_hint_ms: u32,
    },
    /// The server holds no checkpoint mirror of the requested shard
    /// (and does not own it): ask the owner or another peer.
    NoSnapshot,
    /// The server's best servable state is older than the request's
    /// bound; `best_covered` says how far it could serve, so the client
    /// can fall back to the owner (or relax its policy).
    TooStale {
        /// The newest applied height this server could cover.
        best_covered: u64,
    },
}

impl fmt::Display for ReadRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadRefusal::Repairing { eta_hint_ms } => {
                write!(f, "repairing (retry in ~{eta_hint_ms} ms)")
            }
            ReadRefusal::NoSnapshot => write!(f, "no mirror of that shard held here"),
            ReadRefusal::TooStale { best_covered } => {
                write!(f, "best servable height {best_covered} is below the bound")
            }
        }
    }
}

impl Encodable for ReadRefusal {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            ReadRefusal::Repairing { eta_hint_ms } => {
                enc.put_u8(0);
                enc.put_u32(*eta_hint_ms);
            }
            ReadRefusal::NoSnapshot => enc.put_u8(1),
            ReadRefusal::TooStale { best_covered } => {
                enc.put_u8(2);
                enc.put_u64(*best_covered);
            }
        }
    }
}

impl Decodable for ReadRefusal {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => ReadRefusal::Repairing {
                eta_hint_ms: dec.take_u32()?,
            },
            1 => ReadRefusal::NoSnapshot,
            2 => ReadRefusal::TooStale {
                best_covered: dec.take_u64()?,
            },
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

impl Message {
    /// A short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Begin { .. } => "begin",
            Message::Read { .. } => "read",
            Message::ReadResp { .. } => "read-resp",
            Message::ReadErr { .. } => "read-err",
            Message::Write { .. } => "write",
            Message::WriteAck { .. } => "write-ack",
            Message::EndTxn { .. } => "end-txn",
            Message::EndTxnRejected { .. } => "end-txn-rejected",
            Message::EndTxnFwd { .. } => "end-txn-fwd",
            Message::Outcome { .. } => "outcome",
            Message::GetVote { .. } => "get-vote",
            Message::Vote { .. } => "vote",
            Message::Challenge { .. } => "challenge",
            Message::Response { .. } => "response",
            Message::Decision { .. } => "decision",
            Message::TwoPcGetVote { .. } => "2pc-get-vote",
            Message::TwoPcVote { .. } => "2pc-vote",
            Message::TwoPcDecision { .. } => "2pc-decision",
            Message::Flush => "flush",
            Message::Shutdown => "shutdown",
            Message::ReadMany { .. } => "read-many",
            Message::ReadManyResp { .. } => "read-many-resp",
            Message::RepairQuery { .. } => "repair-query",
            Message::RepairInfo { .. } => "repair-info",
            Message::RepairRequest { .. } => "repair-request",
            Message::RepairBlocks { .. } => "repair-blocks",
            Message::RepairCheckpointRequest => "repair-checkpoint-request",
            Message::RepairCheckpoint { .. } => "repair-checkpoint",
            Message::CheckpointMirror { .. } => "checkpoint-mirror",
            Message::Durable { .. } => "durable",
            Message::SnapshotRead { .. } => "snapshot-read",
            Message::SnapshotReadResp { .. } => "snapshot-read-resp",
            Message::SnapshotReadRefused { .. } => "snapshot-read-refused",
            Message::RootQuery { .. } => "root-query",
            Message::RootAnnounce { .. } => "root-announce",
        }
    }
}

// ----------------------------------------------------------------------
// Canonical encoding.
// ----------------------------------------------------------------------

impl Encodable for TxnHandle {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u32(self.client);
        enc.put_u64(self.seq);
    }
}

impl Decodable for TxnHandle {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TxnHandle {
            client: dec.take_u32()?,
            seq: dec.take_u64()?,
        })
    }
}

impl Encodable for PartialBlock {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.height);
        enc.put_seq(&self.txns, |e, t| t.encode_into(e));
        enc.put_digest(&self.prev_hash);
    }
}

impl Decodable for PartialBlock {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PartialBlock {
            height: dec.take_u64()?,
            txns: dec.take_seq(TxnRecord::decode_from)?,
            prev_hash: dec.take_digest()?,
        })
    }
}

impl Encodable for InvolvedVote {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_bool(self.commit);
        enc.put_option(&self.root, |e, d| e.put_digest(d));
        enc.put_seq(&self.failed, |e, t| t.encode_into(e));
    }
}

impl Decodable for InvolvedVote {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(InvolvedVote {
            commit: dec.take_bool()?,
            root: dec.take_option(|d| d.take_digest())?,
            failed: dec.take_seq(Timestamp::decode_from)?,
        })
    }
}

impl Encodable for Refusal {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            Refusal::MissingRoots => 0,
            Refusal::RootMismatch => 1,
            Refusal::BadChallenge => 2,
            Refusal::DecisionInconsistent => 3,
            Refusal::StaleHeight => 4,
            Refusal::WrongLeader => 5,
        });
    }
}

impl Decodable for Refusal {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Refusal::MissingRoots),
            1 => Ok(Refusal::RootMismatch),
            2 => Ok(Refusal::BadChallenge),
            3 => Ok(Refusal::DecisionInconsistent),
            4 => Ok(Refusal::StaleHeight),
            5 => Ok(Refusal::WrongLeader),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Encodes a [`Message::Outcome`] wire payload from **pre-encoded**
/// block bytes. The block dominates the payload for batch-sized rounds;
/// the outcome fan-out encodes it once per block and reuses the bytes
/// across every per-client envelope instead of re-encoding per client.
/// Must stay byte-identical to the `Message::Outcome` arm below.
pub fn encode_outcome_payload(handles: &[TxnHandle], block_bytes: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(8); // Message::Outcome wire tag
    enc.put_seq(handles, |e, h| h.encode_into(e));
    enc.put_fixed(block_bytes);
    enc.into_bytes()
}

impl Encodable for Message {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            Message::Begin { txn } => {
                enc.put_u8(0);
                txn.encode_into(enc);
            }
            Message::Read { txn, key } => {
                enc.put_u8(1);
                txn.encode_into(enc);
                key.encode_into(enc);
            }
            Message::ReadResp {
                txn,
                key,
                value,
                rts,
                wts,
            } => {
                enc.put_u8(2);
                txn.encode_into(enc);
                key.encode_into(enc);
                value.encode_into(enc);
                rts.encode_into(enc);
                wts.encode_into(enc);
            }
            Message::ReadErr { txn, key } => {
                enc.put_u8(3);
                txn.encode_into(enc);
                key.encode_into(enc);
            }
            Message::Write { txn, key, value } => {
                enc.put_u8(4);
                txn.encode_into(enc);
                key.encode_into(enc);
                value.encode_into(enc);
            }
            Message::WriteAck { txn, key, old } => {
                enc.put_u8(5);
                txn.encode_into(enc);
                key.encode_into(enc);
                enc.put_option(old, |e, (v, r, w)| {
                    v.encode_into(e);
                    r.encode_into(e);
                    w.encode_into(e);
                });
            }
            Message::EndTxn { handle, record } => {
                enc.put_u8(6);
                handle.encode_into(enc);
                record.encode_into(enc);
            }
            Message::EndTxnRejected { handle, hint } => {
                enc.put_u8(7);
                handle.encode_into(enc);
                hint.encode_into(enc);
            }
            Message::Outcome { handles, block } => {
                enc.put_u8(8);
                enc.put_seq(handles, |e, h| h.encode_into(e));
                block.encode_into(enc);
            }
            Message::GetVote { partial } => {
                enc.put_u8(9);
                partial.encode_into(enc);
            }
            Message::Vote {
                height,
                commitment,
                involved,
            } => {
                enc.put_u8(10);
                enc.put_u64(*height);
                commitment.encode_into(enc);
                enc.put_option(involved, |e, v| v.encode_into(e));
            }
            Message::Challenge {
                block,
                aggregate,
                challenge,
            } => {
                enc.put_u8(11);
                block.encode_into(enc);
                aggregate.encode_into(enc);
                enc.put_fixed(&challenge.to_be_bytes());
            }
            Message::Response { height, result } => {
                enc.put_u8(12);
                enc.put_u64(*height);
                match result {
                    Ok(resp) => {
                        enc.put_u8(1);
                        resp.encode_into(enc);
                    }
                    Err(refusal) => {
                        enc.put_u8(0);
                        refusal.encode_into(enc);
                    }
                }
            }
            Message::Decision { block } => {
                enc.put_u8(13);
                block.encode_into(enc);
            }
            Message::TwoPcGetVote { partial } => {
                enc.put_u8(14);
                partial.encode_into(enc);
            }
            Message::TwoPcVote {
                height,
                commit,
                failed,
            } => {
                enc.put_u8(15);
                enc.put_u64(*height);
                enc.put_bool(*commit);
                enc.put_seq(failed, |e, t| t.encode_into(e));
            }
            Message::TwoPcDecision { block } => {
                enc.put_u8(16);
                block.encode_into(enc);
            }
            Message::Flush => enc.put_u8(17),
            Message::Shutdown => enc.put_u8(18),
            Message::ReadMany { txn, keys } => {
                enc.put_u8(19);
                txn.encode_into(enc);
                enc.put_seq(keys, |e, k| k.encode_into(e));
            }
            Message::ReadManyResp { txn, items } => {
                enc.put_u8(20);
                txn.encode_into(enc);
                enc.put_seq(items, |e, (key, state)| {
                    key.encode_into(e);
                    e.put_option(state, |e, (value, rts, wts)| {
                        value.encode_into(e);
                        rts.encode_into(e);
                        wts.encode_into(e);
                    });
                });
            }
            Message::RepairQuery { next_height } => {
                enc.put_u8(21);
                enc.put_u64(*next_height);
            }
            Message::RepairInfo {
                next_height,
                tip_hash,
                base_height,
                mirror_height,
            } => {
                enc.put_u8(22);
                enc.put_u64(*next_height);
                enc.put_digest(tip_hash);
                enc.put_u64(*base_height);
                enc.put_option(mirror_height, |e, h| e.put_u64(*h));
            }
            Message::RepairRequest { from, max } => {
                enc.put_u8(23);
                enc.put_u64(*from);
                enc.put_u32(*max);
            }
            Message::RepairBlocks {
                from,
                blocks,
                base_height,
                next_height,
            } => {
                enc.put_u8(24);
                enc.put_u64(*from);
                enc.put_seq(blocks, |e, b| b.encode_into(e));
                enc.put_u64(*base_height);
                enc.put_u64(*next_height);
            }
            Message::RepairCheckpointRequest => enc.put_u8(25),
            Message::RepairCheckpoint { snapshot } => {
                enc.put_u8(26);
                enc.put_option(snapshot, |e, s| s.encode_into(e));
            }
            Message::CheckpointMirror { snapshot } => {
                enc.put_u8(27);
                snapshot.encode_into(enc);
            }
            Message::Durable { height } => {
                enc.put_u8(28);
                enc.put_u64(*height);
            }
            Message::SnapshotRead {
                req,
                shard,
                keys,
                min_covered,
                at_height,
            } => {
                enc.put_u8(29);
                enc.put_u64(*req);
                enc.put_u32(*shard);
                enc.put_seq(keys, |e, k| k.encode_into(e));
                enc.put_u64(*min_covered);
                enc.put_option(at_height, |e, h| e.put_u64(*h));
            }
            Message::SnapshotReadResp {
                req,
                shard,
                root_height,
                covered_height,
                header,
                proof,
            } => {
                enc.put_u8(30);
                enc.put_u64(*req);
                enc.put_u32(*shard);
                enc.put_u64(*root_height);
                enc.put_u64(*covered_height);
                enc.put_option(header, |e, h| h.encode_into(e));
                proof.encode_into(enc);
            }
            Message::SnapshotReadRefused { req, reason } => {
                enc.put_u8(31);
                enc.put_u64(*req);
                reason.encode_into(enc);
            }
            Message::RootQuery { from } => {
                enc.put_u8(32);
                enc.put_u64(*from);
            }
            Message::RootAnnounce { headers } => {
                enc.put_u8(33);
                enc.put_seq(headers, |e, h| h.encode_into(e));
            }
            Message::EndTxnFwd {
                client,
                handle,
                record,
            } => {
                enc.put_u8(34);
                enc.put_u32(*client);
                handle.encode_into(enc);
                record.encode_into(enc);
            }
        }
    }
}

impl Decodable for Message {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => Message::Begin {
                txn: TxnHandle::decode_from(dec)?,
            },
            1 => Message::Read {
                txn: TxnHandle::decode_from(dec)?,
                key: Key::decode_from(dec)?,
            },
            2 => Message::ReadResp {
                txn: TxnHandle::decode_from(dec)?,
                key: Key::decode_from(dec)?,
                value: Value::decode_from(dec)?,
                rts: Timestamp::decode_from(dec)?,
                wts: Timestamp::decode_from(dec)?,
            },
            3 => Message::ReadErr {
                txn: TxnHandle::decode_from(dec)?,
                key: Key::decode_from(dec)?,
            },
            4 => Message::Write {
                txn: TxnHandle::decode_from(dec)?,
                key: Key::decode_from(dec)?,
                value: Value::decode_from(dec)?,
            },
            5 => Message::WriteAck {
                txn: TxnHandle::decode_from(dec)?,
                key: Key::decode_from(dec)?,
                old: dec.take_option(|d| {
                    Ok((
                        Value::decode_from(d)?,
                        Timestamp::decode_from(d)?,
                        Timestamp::decode_from(d)?,
                    ))
                })?,
            },
            6 => Message::EndTxn {
                handle: TxnHandle::decode_from(dec)?,
                record: TxnRecord::decode_from(dec)?,
            },
            7 => Message::EndTxnRejected {
                handle: TxnHandle::decode_from(dec)?,
                hint: Timestamp::decode_from(dec)?,
            },
            8 => Message::Outcome {
                handles: dec.take_seq(TxnHandle::decode_from)?,
                block: Block::decode_from(dec)?,
            },
            9 => Message::GetVote {
                partial: PartialBlock::decode_from(dec)?,
            },
            10 => Message::Vote {
                height: dec.take_u64()?,
                commitment: cosi::Commitment::decode_from(dec)?,
                involved: dec.take_option(InvolvedVote::decode_from)?,
            },
            11 => {
                let block = Block::decode_from(dec)?;
                let aggregate = cosi::Commitment::decode_from(dec)?;
                let mut sb = [0u8; 32];
                sb.copy_from_slice(dec.take_fixed(32)?);
                let challenge = Scalar::from_be_bytes(&sb)
                    .ok_or(DecodeError::InvalidValue("challenge scalar"))?;
                Message::Challenge {
                    block,
                    aggregate,
                    challenge,
                }
            }
            12 => {
                let height = dec.take_u64()?;
                let result = match dec.take_u8()? {
                    1 => Ok(cosi::Response::decode_from(dec)?),
                    0 => Err(Refusal::decode_from(dec)?),
                    t => return Err(DecodeError::InvalidTag(t)),
                };
                Message::Response { height, result }
            }
            13 => Message::Decision {
                block: Block::decode_from(dec)?,
            },
            14 => Message::TwoPcGetVote {
                partial: PartialBlock::decode_from(dec)?,
            },
            15 => Message::TwoPcVote {
                height: dec.take_u64()?,
                commit: dec.take_bool()?,
                failed: dec.take_seq(Timestamp::decode_from)?,
            },
            16 => Message::TwoPcDecision {
                block: Block::decode_from(dec)?,
            },
            17 => Message::Flush,
            18 => Message::Shutdown,
            19 => Message::ReadMany {
                txn: TxnHandle::decode_from(dec)?,
                keys: dec.take_seq(Key::decode_from)?,
            },
            20 => Message::ReadManyResp {
                txn: TxnHandle::decode_from(dec)?,
                items: dec.take_seq(|d| {
                    let key = Key::decode_from(d)?;
                    let state = d.take_option(|d| {
                        let value = Value::decode_from(d)?;
                        let rts = Timestamp::decode_from(d)?;
                        let wts = Timestamp::decode_from(d)?;
                        Ok((value, rts, wts))
                    })?;
                    Ok((key, state))
                })?,
            },
            21 => Message::RepairQuery {
                next_height: dec.take_u64()?,
            },
            22 => Message::RepairInfo {
                next_height: dec.take_u64()?,
                tip_hash: dec.take_digest()?,
                base_height: dec.take_u64()?,
                mirror_height: dec.take_option(|d| d.take_u64())?,
            },
            23 => Message::RepairRequest {
                from: dec.take_u64()?,
                max: dec.take_u32()?,
            },
            24 => Message::RepairBlocks {
                from: dec.take_u64()?,
                blocks: dec.take_seq(Block::decode_from)?,
                base_height: dec.take_u64()?,
                next_height: dec.take_u64()?,
            },
            25 => Message::RepairCheckpointRequest,
            26 => Message::RepairCheckpoint {
                snapshot: dec.take_option(|d| ShardSnapshot::decode_from(d).map(Box::new))?,
            },
            27 => Message::CheckpointMirror {
                snapshot: Box::new(ShardSnapshot::decode_from(dec)?),
            },
            28 => Message::Durable {
                height: dec.take_u64()?,
            },
            29 => Message::SnapshotRead {
                req: dec.take_u64()?,
                shard: dec.take_u32()?,
                keys: dec.take_seq(Key::decode_from)?,
                min_covered: dec.take_u64()?,
                at_height: dec.take_option(|d| d.take_u64())?,
            },
            30 => Message::SnapshotReadResp {
                req: dec.take_u64()?,
                shard: dec.take_u32()?,
                root_height: dec.take_u64()?,
                covered_height: dec.take_u64()?,
                header: dec.take_option(|d| BlockHeader::decode_from(d).map(Box::new))?,
                proof: Box::new(ShardReadProof::decode_from(dec)?),
            },
            31 => Message::SnapshotReadRefused {
                req: dec.take_u64()?,
                reason: ReadRefusal::decode_from(dec)?,
            },
            32 => Message::RootQuery {
                from: dec.take_u64()?,
            },
            33 => Message::RootAnnounce {
                headers: dec.take_seq(BlockHeader::decode_from)?,
            },
            34 => Message::EndTxnFwd {
                client: dec.take_u32()?,
                handle: TxnHandle::decode_from(dec)?,
                record: TxnRecord::decode_from(dec)?,
            },
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::schnorr::KeyPair;
    use fides_crypto::Digest;
    use fides_ledger::block::{BlockBuilder, Decision};
    use fides_store::rwset::{ReadEntry, WriteEntry};

    fn sample_record() -> TxnRecord {
        TxnRecord {
            id: Timestamp::new(10, 2),
            read_set: vec![ReadEntry {
                key: Key::new("x"),
                value: Value::from_i64(5),
                rts: Timestamp::ZERO,
                wts: Timestamp::ZERO,
            }],
            write_set: vec![WriteEntry {
                key: Key::new("x"),
                new_value: Value::from_i64(6),
                old_value: None,
                rts: Timestamp::ZERO,
                wts: Timestamp::ZERO,
            }],
        }
    }

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn execution_messages_roundtrip() {
        let txn = TxnHandle { client: 3, seq: 9 };
        roundtrip(Message::Begin { txn });
        roundtrip(Message::Read {
            txn,
            key: Key::new("k"),
        });
        roundtrip(Message::ReadResp {
            txn,
            key: Key::new("k"),
            value: Value::from_i64(7),
            rts: Timestamp::new(1, 0),
            wts: Timestamp::new(2, 0),
        });
        roundtrip(Message::ReadErr {
            txn,
            key: Key::new("k"),
        });
        roundtrip(Message::Write {
            txn,
            key: Key::new("k"),
            value: Value::from_i64(8),
        });
        roundtrip(Message::WriteAck {
            txn,
            key: Key::new("k"),
            old: Some((
                Value::from_i64(7),
                Timestamp::new(1, 0),
                Timestamp::new(2, 0),
            )),
        });
        roundtrip(Message::WriteAck {
            txn,
            key: Key::new("k"),
            old: None,
        });
    }

    #[test]
    fn termination_messages_roundtrip() {
        let handle = TxnHandle { client: 1, seq: 2 };
        roundtrip(Message::EndTxn {
            handle,
            record: sample_record(),
        });
        roundtrip(Message::EndTxnRejected {
            handle,
            hint: Timestamp::new(50, 0),
        });
        roundtrip(Message::EndTxnFwd {
            client: 5,
            handle,
            record: sample_record(),
        });
        let block = BlockBuilder::new(0, Digest::ZERO)
            .txn(sample_record())
            .decision(Decision::Commit)
            .build_unsigned();
        roundtrip(Message::Outcome {
            handles: vec![handle, TxnHandle { client: 2, seq: 9 }],
            block,
        });
    }

    #[test]
    fn tfcommit_messages_roundtrip() {
        let partial = PartialBlock {
            height: 4,
            txns: vec![sample_record()],
            prev_hash: Digest::new([3; 32]),
        };
        roundtrip(Message::GetVote {
            partial: partial.clone(),
        });

        let kp = KeyPair::from_seed(b"w");
        let witness = fides_crypto::cosi::Witness::commit(&kp, b"r", b"rec");
        roundtrip(Message::Vote {
            height: 4,
            commitment: witness.commitment(),
            involved: Some(InvolvedVote {
                commit: true,
                root: Some(Digest::new([1; 32])),
                failed: vec![],
            }),
        });
        roundtrip(Message::Vote {
            height: 4,
            commitment: witness.commitment(),
            involved: None,
        });

        let block = BlockBuilder::new(4, Digest::new([3; 32]))
            .txn(sample_record())
            .decision(Decision::Commit)
            .build_unsigned();
        let challenge =
            fides_crypto::cosi::challenge(&witness.commitment().0, &block.signing_bytes());
        roundtrip(Message::Challenge {
            block: block.clone(),
            aggregate: witness.commitment(),
            challenge,
        });
        roundtrip(Message::Response {
            height: 4,
            result: Ok(witness.respond(&challenge)),
        });
        roundtrip(Message::Response {
            height: 4,
            result: Err(Refusal::RootMismatch),
        });
        roundtrip(Message::Response {
            height: 4,
            result: Err(Refusal::WrongLeader),
        });
        roundtrip(Message::Decision { block });
    }

    #[test]
    fn twopc_and_control_messages_roundtrip() {
        let partial = PartialBlock {
            height: 0,
            txns: vec![],
            prev_hash: Digest::ZERO,
        };
        roundtrip(Message::TwoPcGetVote { partial });
        roundtrip(Message::TwoPcVote {
            height: 0,
            commit: false,
            failed: vec![Timestamp::new(9, 1)],
        });
        let block = BlockBuilder::new(0, Digest::ZERO)
            .decision(Decision::Abort)
            .build_unsigned();
        roundtrip(Message::TwoPcDecision { block });
        roundtrip(Message::Flush);
        roundtrip(Message::Shutdown);
    }

    #[test]
    fn repair_messages_roundtrip() {
        roundtrip(Message::RepairQuery { next_height: 17 });
        roundtrip(Message::RepairInfo {
            next_height: 40,
            tip_hash: Digest::new([8; 32]),
            base_height: 32,
            mirror_height: Some(36),
        });
        roundtrip(Message::RepairInfo {
            next_height: 0,
            tip_hash: Digest::ZERO,
            base_height: 0,
            mirror_height: None,
        });
        roundtrip(Message::RepairRequest { from: 9, max: 64 });
        let block = BlockBuilder::new(9, Digest::new([2; 32]))
            .txn(sample_record())
            .decision(Decision::Commit)
            .build_unsigned();
        roundtrip(Message::RepairBlocks {
            from: 9,
            blocks: vec![block],
            base_height: 4,
            next_height: 12,
        });
        roundtrip(Message::RepairCheckpointRequest);

        let shard = fides_store::AuthenticatedShard::new(vec![(Key::new("m"), Value::from_i64(3))]);
        let snapshot = fides_durability::ShardSnapshot::capture(
            &shard,
            8,
            Digest::new([5; 32]),
            Timestamp::new(7, 0),
        );
        roundtrip(Message::RepairCheckpoint {
            snapshot: Some(Box::new(snapshot.clone())),
        });
        roundtrip(Message::RepairCheckpoint { snapshot: None });
        roundtrip(Message::CheckpointMirror {
            snapshot: Box::new(snapshot),
        });
        roundtrip(Message::Durable { height: 3 });
    }

    #[test]
    fn read_plane_messages_roundtrip() {
        roundtrip(Message::SnapshotRead {
            req: 7,
            shard: 2,
            keys: vec![Key::new("a"), Key::new("b")],
            min_covered: 12,
            at_height: Some(10),
        });
        let shard = fides_store::AuthenticatedShard::new(vec![(Key::new("m"), Value::from_i64(3))]);
        let proof = shard.prove_read(&[Key::new("m"), Key::new("missing")]);
        let block = BlockBuilder::new(4, Digest::new([2; 32]))
            .txn(sample_record())
            .decision(Decision::Commit)
            .build_unsigned();
        roundtrip(Message::SnapshotReadResp {
            req: 7,
            shard: 2,
            root_height: 5,
            covered_height: 9,
            header: Some(Box::new(block.header())),
            proof: Box::new(proof.clone()),
        });
        roundtrip(Message::SnapshotReadResp {
            req: 8,
            shard: 2,
            root_height: 0,
            covered_height: 0,
            header: None,
            proof: Box::new(proof),
        });
        for reason in [
            crate::messages::ReadRefusal::Repairing { eta_hint_ms: 120 },
            crate::messages::ReadRefusal::NoSnapshot,
            crate::messages::ReadRefusal::TooStale { best_covered: 4 },
        ] {
            roundtrip(Message::SnapshotReadRefused { req: 3, reason });
        }
        roundtrip(Message::RootQuery { from: 9 });
        roundtrip(Message::RootAnnounce {
            headers: vec![block.header()],
        });
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(Message::decode(&[99]).is_err());
    }

    #[test]
    fn kind_names_are_distinct_for_protocol_phases() {
        let txn = TxnHandle { client: 0, seq: 0 };
        let kinds = [
            Message::Begin { txn }.kind(),
            Message::Flush.kind(),
            Message::Shutdown.kind(),
        ];
        assert_eq!(kinds.len(), 3);
        assert!(kinds.iter().all(|k| !k.is_empty()));
    }
}
