//! Fault-injection switches (paper §3.2, §5).
//!
//! "An individual server … can fail at one or more of the components. A
//! fault in the execution layer can return incorrect values; in the
//! commit layer can violate transaction atomicity; in the datastore can
//! corrupt the stored data values; and in the log can omit or reorder
//! the transaction history."
//!
//! A [`Behavior`] configures which of those faults a server exhibits.
//! Every switch corresponds to a failure scenario from §5 or a lemma
//! from §4, and the `audit` module's tests assert that each one is
//! detected *and attributed to the right server*.

use fides_store::types::{Key, Value};

/// Per-server malicious behaviour configuration. [`Behavior::honest`]
/// (= `Default`) disables everything.
#[derive(Clone, Debug, Default)]
pub struct Behavior {
    // ------------------------------------------------------------------
    // Execution-layer faults (§4.2.2, Scenario 1).
    // ------------------------------------------------------------------
    /// Return stale values (the previous version) for reads of these
    /// keys, while reporting *up-to-date* timestamps — the exact attack
    /// of Figure 10.
    pub stale_read_keys: Vec<Key>,

    // ------------------------------------------------------------------
    // Datastore faults (§4.2.2, Scenario 3).
    // ------------------------------------------------------------------
    /// Silently skip applying committed writes to these keys (the
    /// datastore never reflects the logged update).
    pub skip_write_keys: Vec<Key>,
    /// After each commit, overwrite `key` with `value` without a trace.
    pub corrupt_after_commit: Option<(Key, Value)>,

    // ------------------------------------------------------------------
    // Commit-layer faults — cohort side (Lemma 4).
    // ------------------------------------------------------------------
    /// Send an incorrect Schnorr response in the `SchResponse` phase.
    pub corrupt_cosi_response: bool,

    // ------------------------------------------------------------------
    // Commit-layer faults — coordinator side (Lemma 5, Scenario 2).
    // ------------------------------------------------------------------
    /// Equivocate: send a commit-decision block to even-indexed cohorts
    /// and an abort-decision block to odd-indexed ones, with the
    /// challenge computed from the commit block (Lemma 5, Case 1).
    pub equivocate_decision: bool,
    /// Replace this server's root in the block with garbage
    /// (Scenario 2: incorrect block creation against a benign server).
    pub fake_root_for: Option<u32>,
    /// As leader, collect every vote and then go silent — no
    /// `Challenge`, no `Decision`, no rejection. Cohorts are left
    /// holding live CoSi witnesses forever: the stalled-leader scenario
    /// the liveness watchdog must detect.
    pub stall_after_votes: bool,

    // ------------------------------------------------------------------
    // Repair-plane faults: a Byzantine peer serving garbage to a
    // rejoining server. Both are refuted by the repairer's verification
    // (batched collective signatures, chain anchoring, root
    // cross-checks) and reported as audit evidence.
    // ------------------------------------------------------------------
    /// When serving a `RepairRequest`, flip a block's decision in the
    /// transferred chunk (the tampered-suffix attack).
    pub tamper_repair_blocks: bool,
    /// When serving a `RepairCheckpointRequest`, corrupt a value inside
    /// the mirrored checkpoint before sending it.
    pub tamper_repair_checkpoint: bool,

    // ------------------------------------------------------------------
    // Verified-read-plane faults: a Byzantine server answering
    // `SnapshotRead` with garbage. All three are refuted client-side
    // (the proofs cannot be forged) and filed as `ReadEvidence` →
    // `TamperedRead` audit violations against this server.
    // ------------------------------------------------------------------
    /// Serve a corrupted value for snapshot reads of these keys (the
    /// genuine proof then fails to link the forged value to the
    /// co-signed root).
    pub forge_read_values: Vec<Key>,
    /// Claim these keys absent in snapshot reads, with a fabricated
    /// absence bracket.
    pub forge_read_absence: Vec<Key>,
    /// Ignore the request's freshness bound and serve whatever state is
    /// at hand — the stale-beyond-bound attack (an honest server
    /// refuses with `ReadRefusal::TooStale`).
    pub ignore_read_bounds: bool,

    // ------------------------------------------------------------------
    // Log faults (§4.4, Lemmas 6–7). Applied lazily, right before logs
    // are surrendered to the auditor.
    // ------------------------------------------------------------------
    /// Rewrite the decision of the block at this height.
    pub tamper_log_at: Option<u64>,
    /// Swap the two blocks at these heights.
    pub reorder_log: Option<(u64, u64)>,
    /// Drop every block after this length (omit the tail).
    pub truncate_log_to: Option<usize>,
}

impl Behavior {
    /// A fully honest server.
    pub fn honest() -> Self {
        Behavior::default()
    }

    /// Returns `true` if every switch is off.
    pub fn is_honest(&self) -> bool {
        self.stale_read_keys.is_empty()
            && self.skip_write_keys.is_empty()
            && self.corrupt_after_commit.is_none()
            && !self.corrupt_cosi_response
            && !self.equivocate_decision
            && self.fake_root_for.is_none()
            && !self.stall_after_votes
            && !self.tamper_repair_blocks
            && !self.tamper_repair_checkpoint
            && self.forge_read_values.is_empty()
            && self.forge_read_absence.is_empty()
            && !self.ignore_read_bounds
            && self.tamper_log_at.is_none()
            && self.reorder_log.is_none()
            && self.truncate_log_to.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert!(Behavior::honest().is_honest());
        assert!(Behavior::default().is_honest());
    }

    #[test]
    fn any_switch_flips_honesty() {
        let mut b = Behavior::honest();
        b.corrupt_cosi_response = true;
        assert!(!b.is_honest());

        let mut b = Behavior::honest();
        b.stale_read_keys.push(Key::new("x"));
        assert!(!b.is_honest());

        let mut b = Behavior::honest();
        b.truncate_log_to = Some(0);
        assert!(!b.is_honest());

        let mut b = Behavior::honest();
        b.fake_root_for = Some(2);
        assert!(!b.is_honest());
    }
}
