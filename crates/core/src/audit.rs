//! The offline auditor (paper §3.3, §4.2.2, §4.3.2, §4.4, §4.5, §5).
//!
//! The auditor is "a powerful external entity" that (1) gathers the
//! tamper-proof logs from all servers and identifies the correct and
//! complete log (Lemmas 6–7), (2) replays it to detect incorrect reads
//! (Lemma 1) and serializability violations (Lemma 3), (3)
//! authenticates each server's datastore against the logged Merkle
//! roots using verification objects (Lemma 2), and (4) checks the
//! block-level commit/abort invariants backing atomicity (Lemma 5).
//!
//! Every detected violation names the block height and, where the fault
//! is attributable, the precise misbehaving server — the paper's twin
//! guarantees that "a malicious fault … is undeniably linked to the
//! malicious server" and "a benign server can always defend itself
//! against falsified accusations" (§1).
//!
//! The per-block cosign check behind `verify_cosign` runs on the
//! verification fast path: chain validation
//! ([`fides_ledger::validate::validate_chain`]) verifies each log
//! copy's collective signatures with **one** batched
//! random-linear-combination check
//! ([`fides_crypto::cosi::verify_batch`]) and falls back to per-block
//! verification only when the batch fails — so the violation still
//! names the exact block, at a fraction of the honest-case cost. With
//! `S` servers each surrendering an `N`-block log, the audit performs
//! `S` batched checks instead of `S·N` full signature verifications.

use core::fmt;
use std::collections::{HashMap, HashSet};

use fides_crypto::schnorr::PublicKey;
use fides_durability::ShardSnapshot;
use fides_ledger::block::{Block, Decision, TxnRecord};
use fides_ledger::log::TamperProofLog;
use fides_ledger::validate::{select_canonical_log, ChainFault, LogAssessment};
use fides_store::authenticated::{leaf_digest, AuthenticatedShard};
use fides_store::types::{ItemState, Key, Timestamp, Value};

use crate::occ::{self, Conflict};
use crate::partition::Partitioner;
use crate::repair::RepairFault;

/// What the auditor found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The server's log failed chain validation (Lemma 6).
    TamperedLog(ChainFault),
    /// The server's log is a valid but short prefix (Lemma 7).
    IncompleteLog {
        /// Blocks the server kept.
        len: usize,
        /// Canonical length.
        canonical_len: usize,
    },
    /// The server's log is validly signed but diverges — global
    /// collusion evidence.
    ForkedLog {
        /// First divergent height.
        height: u64,
    },
    /// A committed read does not match the value established by the
    /// log (Lemma 1).
    IncorrectRead {
        /// The transaction that observed the bad value.
        txn: Timestamp,
        /// The item.
        key: Key,
        /// What the log says the value was.
        expected: Value,
        /// What the server returned.
        observed: Value,
    },
    /// A committed transaction conflicts with the timestamp order
    /// (Lemma 3).
    SerializabilityViolation {
        /// The offending transaction.
        txn: Timestamp,
        /// The conflict details.
        conflict: Conflict,
    },
    /// The serialization graph over the committed history has a cycle
    /// (the graph formulation of Lemma 3).
    SerializationCycle {
        /// Transactions on the detected cycle.
        cycle: Vec<Timestamp>,
    },
    /// A server's datastore does not authenticate against the root it
    /// co-signed (Lemma 2).
    DatastoreCorruption {
        /// The item whose proof failed.
        key: Key,
        /// The audited version.
        version: Timestamp,
    },
    /// A commit block is missing an involved server's root, or an abort
    /// block carries a complete root set (Lemma 5 supporting invariant).
    InconsistentRoots {
        /// The block's decision.
        decision: Decision,
    },
    /// A repair peer served a state-transfer payload that failed the
    /// repairer's verification (tampered suffix, forged checkpoint) —
    /// evidence collected by the repairing server and surrendered with
    /// the audit.
    TamperedTransfer {
        /// What the repairer's verification caught.
        fault: RepairFault,
    },
    /// A surrendered checkpoint does not bind to the canonical chain
    /// (wrong tip hash, impossible height, or a payload that cannot
    /// reproduce its recorded root) — the server's shard cannot seed
    /// the suffix replay and its reads go unaudited below the tip.
    BadCheckpoint {
        /// The checkpoint's claimed height.
        height: u64,
    },
    /// A server answered a proof-carrying snapshot read with a response
    /// the client's verification refuted — a forged value, a forged
    /// absence, a forged header, or a stale-beyond-bound serve
    /// (evidence collected client-side, surrendered with the audit).
    TamperedRead {
        /// What the client's verification caught.
        fault: fides_read::ReadFault,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::TamperedLog(fault) => write!(f, "tampered log ({fault})"),
            ViolationKind::IncompleteLog { len, canonical_len } => {
                write!(f, "incomplete log ({len} of {canonical_len} blocks)")
            }
            ViolationKind::ForkedLog { height } => write!(f, "forked log at height {height}"),
            ViolationKind::IncorrectRead {
                txn,
                key,
                expected,
                observed,
            } => write!(
                f,
                "incorrect read by {txn} on {key}: expected {expected}, observed {observed}"
            ),
            ViolationKind::SerializabilityViolation { txn, conflict } => {
                write!(f, "serializability violation by {txn}: {conflict}")
            }
            ViolationKind::SerializationCycle { cycle } => {
                write!(f, "serialization cycle through {} txns", cycle.len())
            }
            ViolationKind::DatastoreCorruption { key, version } => {
                write!(f, "datastore corruption of {key} at version {version}")
            }
            ViolationKind::InconsistentRoots { decision } => {
                write!(f, "inconsistent root set for a {decision} block")
            }
            ViolationKind::TamperedTransfer { fault } => {
                write!(f, "served a refused repair transfer ({fault})")
            }
            ViolationKind::BadCheckpoint { height } => {
                write!(
                    f,
                    "surrendered checkpoint at height {height} does not bind to the chain"
                )
            }
            ViolationKind::TamperedRead { fault } => {
                write!(f, "served a refuted snapshot read ({fault})")
            }
        }
    }
}

/// One detected violation: the kind, the block where it surfaced and —
/// when attributable — the culprit server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The misbehaving server's index, when attributable.
    pub server: Option<u32>,
    /// The block height where the violation surfaced.
    pub height: Option<u64>,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.server, self.height) {
            (Some(s), Some(h)) => write!(f, "[server {s}, block {h}] {}", self.kind),
            (Some(s), None) => write!(f, "[server {s}] {}", self.kind),
            (None, Some(h)) => write!(f, "[block {h}] {}", self.kind),
            (None, None) => write!(f, "{}", self.kind),
        }
    }
}

/// The audit result.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
    /// Length of the canonical log used for replay.
    pub canonical_len: usize,
    /// Base height of the canonical log (0 unless every server
    /// surrendered a pruned suffix; then replay was seeded from the
    /// surrendered checkpoints).
    pub canonical_base: u64,
    /// Number of committed blocks replayed.
    pub blocks_replayed: usize,
    /// Servers whose logs stop short because they are **repairing**
    /// within the grace deadline — lagging, not faulty, so no
    /// incomplete-log violation is raised against them.
    pub lagging: Vec<u32>,
}

impl AuditReport {
    /// `true` when no violation of any kind was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations attributed to a given server.
    pub fn against_server(&self, server: u32) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.server == Some(server))
            .collect()
    }

    /// The first violation in log order (the paper: "the auditor
    /// identifies the first occurrence of any of these violations", §4.5).
    pub fn first(&self) -> Option<&Violation> {
        self.violations
            .iter()
            .min_by_key(|v| v.height.unwrap_or(u64::MAX))
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "audit clean: {} blocks replayed, no violations",
                self.blocks_replayed
            )
        } else {
            writeln!(f, "audit found {} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Everything the auditor collects from the (untrusted) servers.
#[derive(Debug)]
pub struct AuditInput {
    /// Per-server log copies, as surrendered (possibly doctored).
    pub logs: Vec<TamperProofLog>,
    /// Per-server datastore snapshots (the auditor probes these for
    /// verification objects; a corrupted store yields failing proofs).
    pub shards: Vec<AuthenticatedShard>,
    /// Per-server newest persisted checkpoints. Only consulted when
    /// the canonical log is a *suffix* (every server pruned its WAL
    /// below a snapshot): each checkpoint is bound to the canonical
    /// chain (height + tip hash + root re-computation, the PR 2
    /// snapshot-binding machinery) and then seeds the replay state for
    /// that server's shard.
    pub checkpoints: Vec<Option<ShardSnapshot>>,
}

impl AuditInput {
    /// An input without surrendered checkpoints (full-log audits).
    pub fn new(logs: Vec<TamperProofLog>, shards: Vec<AuthenticatedShard>) -> Self {
        let checkpoints = vec![None; logs.len()];
        AuditInput {
            logs,
            shards,
            checkpoints,
        }
    }
}

/// The offline auditor.
#[derive(Debug, Clone)]
pub struct Auditor {
    partitioner: Partitioner,
    server_pks: Vec<PublicKey>,
    /// The initial database contents (the trusted genesis state that
    /// seeds replay).
    initial: HashMap<Key, Value>,
    /// Verify collective signatures (disabled when auditing a 2PC
    /// cluster, which has none).
    verify_cosign: bool,
    /// Servers known to be mid-repair (within the grace deadline):
    /// their short logs are lagging, not omission faults, and their
    /// stale shards are not probed for verification objects.
    lagging: HashSet<u32>,
}

impl Auditor {
    /// Creates an auditor.
    pub fn new(
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
        initial: HashMap<Key, Value>,
    ) -> Self {
        Auditor {
            partitioner,
            server_pks,
            initial,
            verify_cosign: true,
            lagging: HashSet::new(),
        }
    }

    /// Disables co-sign verification (2PC baseline audits).
    pub fn without_cosign_verification(mut self) -> Self {
        self.verify_cosign = false;
        self
    }

    /// Marks servers as repairing-within-grace: lagging, not faulty.
    pub fn with_lagging(mut self, lagging: HashSet<u32>) -> Self {
        self.lagging = lagging;
        self
    }

    /// Runs the complete audit.
    pub fn audit(&self, input: &AuditInput) -> AuditReport {
        let mut violations = Vec::new();
        let mut lagging_report = Vec::new();

        // ---- Step 1: log gathering and selection (Lemmas 6–7). -------
        let canonical = if self.verify_cosign {
            let selection = select_canonical_log(&input.logs, &self.server_pks);
            for (server, assessment) in selection.assessments.iter().enumerate() {
                let server = server as u32;
                match assessment {
                    LogAssessment::Complete => {}
                    LogAssessment::Incomplete { len, canonical_len } => {
                        // A repairing server (within its grace window)
                        // is lagging, not omitting: the repair plane is
                        // resynchronizing it.
                        if self.lagging.contains(&server) {
                            lagging_report.push(server);
                        } else {
                            violations.push(Violation {
                                server: Some(server),
                                height: Some(*len as u64),
                                kind: ViolationKind::IncompleteLog {
                                    len: *len,
                                    canonical_len: *canonical_len,
                                },
                            });
                        }
                    }
                    LogAssessment::Tampered(fault) => violations.push(Violation {
                        server: Some(server),
                        height: Some(fault.height),
                        kind: ViolationKind::TamperedLog(*fault),
                    }),
                    LogAssessment::Forked { height } => violations.push(Violation {
                        server: Some(server),
                        height: Some(*height),
                        kind: ViolationKind::ForkedLog { height: *height },
                    }),
                }
            }
            selection.canonical
        } else {
            // Without signatures the longest log is taken on faith.
            input
                .logs
                .iter()
                .max_by_key(|l| l.len())
                .cloned()
                .unwrap_or_default()
        };

        // ---- Step 2: replay (Lemmas 1 and 3). -------------------------
        //
        // A canonical log with base 0 replays from the trusted genesis
        // population. When every server pruned below a checkpoint the
        // canonical log is a *suffix*: replay is then seeded from the
        // surrendered checkpoints, each first **bound** to the canonical
        // chain (height within coverage, recorded tip hash matching the
        // chain, payload reproducing its recorded root). A shard without
        // a bindable checkpoint stays inactive — its keys go unchecked
        // rather than producing false accusations from unknown state.
        let base = canonical.base_height();
        let mut state: HashMap<Key, ItemState> = HashMap::new();
        let mut active_from: HashMap<u32, u64> = HashMap::new();
        if base == 0 {
            state = self
                .initial
                .iter()
                .map(|(k, v)| (k.clone(), ItemState::initial(v.clone())))
                .collect();
        } else {
            for (server, checkpoint) in input.checkpoints.iter().enumerate() {
                let server = server as u32;
                let Some(snap) = checkpoint else {
                    active_from.insert(server, u64::MAX);
                    continue;
                };
                let expected_tip = if snap.height == base {
                    Some(canonical.base_tip())
                } else {
                    canonical.get(snap.height.wrapping_sub(1)).map(Block::hash)
                };
                let bound = snap.height >= base
                    && snap.height <= canonical.next_height()
                    && expected_tip == Some(snap.tip_hash)
                    && snap.restore_verified().is_ok();
                if !bound {
                    violations.push(Violation {
                        server: Some(server),
                        height: Some(snap.height),
                        kind: ViolationKind::BadCheckpoint {
                            height: snap.height,
                        },
                    });
                    active_from.insert(server, u64::MAX);
                    continue;
                }
                active_from.insert(server, snap.height);
                for item in &snap.checkpoint.items {
                    let (wts, value) = item.versions.last().expect("non-empty chains");
                    state.insert(
                        item.key.clone(),
                        ItemState {
                            value: value.clone(),
                            rts: item.rts,
                            wts: *wts,
                        },
                    );
                }
            }
        }
        // A key's checks and effects activate once replay passes its
        // owner's seed height (everything below is already inside the
        // seeding checkpoint).
        let active = |active_from: &HashMap<u32, u64>, server: u32, height: u64| {
            height >= active_from.get(&server).copied().unwrap_or(0)
        };
        let mut committed_txns: Vec<TxnRecord> = Vec::new();
        let mut blocks_replayed = 0;

        for block in canonical.iter() {
            self.check_root_consistency(block, &mut violations);
            if block.decision != Decision::Commit {
                continue;
            }
            blocks_replayed += 1;
            for txn in &block.txns {
                // Lemma 1: each read must reflect the latest logged write.
                for read in &txn.read_set {
                    if !active(
                        &active_from,
                        self.partitioner.owner(&read.key),
                        block.height,
                    ) {
                        continue;
                    }
                    if let Some(expected) = state.get(&read.key) {
                        if read.value != expected.value || read.wts != expected.wts {
                            violations.push(Violation {
                                server: Some(self.partitioner.owner(&read.key)),
                                height: Some(block.height),
                                kind: ViolationKind::IncorrectRead {
                                    txn: txn.id,
                                    key: read.key.clone(),
                                    expected: expected.value.clone(),
                                    observed: read.value.clone(),
                                },
                            });
                        }
                    }
                }
                // Lemma 3: timestamp-order conflicts.
                for conflict in occ::validate_txn(txn, |key| state.get(key).cloned()) {
                    if !active(
                        &active_from,
                        self.partitioner.owner(&conflict.key),
                        block.height,
                    ) {
                        continue;
                    }
                    violations.push(Violation {
                        server: Some(self.partitioner.owner(&conflict.key)),
                        height: Some(block.height),
                        kind: ViolationKind::SerializabilityViolation {
                            txn: txn.id,
                            conflict,
                        },
                    });
                }
                // Apply effects (skipped below a shard's seed height —
                // the checkpoint already includes them).
                for read in &txn.read_set {
                    if !active(
                        &active_from,
                        self.partitioner.owner(&read.key),
                        block.height,
                    ) {
                        continue;
                    }
                    if let Some(st) = state.get_mut(&read.key) {
                        if txn.id > st.rts {
                            st.rts = txn.id;
                        }
                    }
                }
                for write in &txn.write_set {
                    if !active(
                        &active_from,
                        self.partitioner.owner(&write.key),
                        block.height,
                    ) {
                        continue;
                    }
                    let st = state
                        .entry(write.key.clone())
                        .or_insert_with(|| ItemState::initial(write.new_value.clone()));
                    st.value = write.new_value.clone();
                    if txn.id > st.wts {
                        st.wts = txn.id;
                    }
                    if txn.id > st.rts {
                        st.rts = txn.id;
                    }
                }
                committed_txns.push(txn.clone());
            }
        }

        // Lemma 3, graph form: the committed history must have an
        // acyclic serialization graph.
        if let Err(cycle) = serialization_graph_check(&committed_txns) {
            violations.push(Violation {
                server: None,
                height: None,
                kind: ViolationKind::SerializationCycle { cycle },
            });
        }

        // ---- Step 3: datastore authentication (Lemma 2). -------------
        //
        // The logged root is the **composite** `H(value_root ‖
        // key_root)` ([`fides_store::combine_roots`]): the VO computed
        // from the (possibly corrupted) store yields the value half,
        // the reconstructed key tree at that version the other half.
        // The key-root reconstruction is cached per (server, version) —
        // it only changes when a key is created.
        let mut key_roots: HashMap<(u32, Timestamp), fides_crypto::Digest> = HashMap::new();
        for block in canonical.iter() {
            if block.decision != Decision::Commit {
                continue;
            }
            let Some(version) = block.max_txn_ts() else {
                continue;
            };
            for txn in &block.txns {
                for write in &txn.write_set {
                    let server = self.partitioner.owner(&write.key);
                    if self.lagging.contains(&server) {
                        // A mid-repair shard legitimately lacks recent
                        // writes; it is re-audited once the transfer
                        // installs.
                        continue;
                    }
                    let Some(logged_root) = block.root_of(server) else {
                        continue; // missing roots reported separately
                    };
                    let Some(shard) = input.shards.get(server as usize) else {
                        continue;
                    };
                    // The server produces the VO from its *actual*
                    // (possibly corrupted) store (§4.2.2).
                    let authentic = match shard.proof_at_version(&write.key, version) {
                        Some((stored_value, vo)) => {
                            let value_root =
                                vo.compute_root(leaf_digest(&write.key, &stored_value));
                            let key_root = *key_roots
                                .entry((server, version))
                                .or_insert_with(|| shard.key_tree_at_version(version).root());
                            fides_store::combine_roots(&value_root, &key_root) == logged_root
                        }
                        None => false,
                    };
                    if !authentic {
                        violations.push(Violation {
                            server: Some(server),
                            height: Some(block.height),
                            kind: ViolationKind::DatastoreCorruption {
                                key: write.key.clone(),
                                version,
                            },
                        });
                    }
                }
            }
        }

        AuditReport {
            violations,
            canonical_len: canonical.len(),
            canonical_base: base,
            blocks_replayed,
            lagging: lagging_report,
        }
    }

    /// Block-level root invariants (§4.3.1): commit ⇒ all involved
    /// roots present; abort ⇒ at least one missing.
    fn check_root_consistency(&self, block: &Block, violations: &mut Vec<Violation>) {
        let mut involved: HashSet<u32> = HashSet::new();
        for txn in &block.txns {
            for r in &txn.read_set {
                involved.insert(self.partitioner.owner(&r.key));
            }
            for w in &txn.write_set {
                involved.insert(self.partitioner.owner(&w.key));
            }
        }
        if !self.verify_cosign {
            return; // the 2PC baseline logs no roots
        }
        let present: HashSet<u32> = block.roots.iter().map(|r| r.server).collect();
        let bad = match block.decision {
            Decision::Commit => !involved.iter().all(|s| present.contains(s)),
            Decision::Abort => !involved.is_empty() && involved.iter().all(|s| present.contains(s)),
        };
        if bad {
            violations.push(Violation {
                server: None,
                height: Some(block.height),
                kind: ViolationKind::InconsistentRoots {
                    decision: block.decision,
                },
            });
        }
    }
}

/// Builds the serialization graph of a committed history and checks it
/// for cycles (Lemma 3: "this is equivalent to verifying that no cycle
/// exists in the Serialization Graph").
///
/// Versions are identified by the recorded timestamps: a write by
/// transaction `T` creates version `T.id` of the key, and a read entry's
/// `wts` names the version the transaction actually observed (the
/// *reads-from* relation). Edges follow the classic rules:
///
/// * **WR** — version writer → its readers,
/// * **WW** — writer of each version → writer of the next version,
/// * **RW** — reader of a version → writer of the next version
///   (anti-dependency).
///
/// Because edges are derived from the recorded versions rather than log
/// positions, a history whose reads contradict the log order produces a
/// genuine cycle.
///
/// # Errors
///
/// Returns one detected cycle (as the list of transaction ids on it).
pub fn serialization_graph_check(txns: &[TxnRecord]) -> Result<(), Vec<Timestamp>> {
    let n = txns.len();
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n];

    // Version chains per key: (version ts, writer index), sorted by ts.
    let mut versions: HashMap<Key, Vec<(Timestamp, usize)>> = HashMap::new();
    for (i, txn) in txns.iter().enumerate() {
        for write in &txn.write_set {
            versions
                .entry(write.key.clone())
                .or_default()
                .push((txn.id, i));
        }
    }
    for chain in versions.values_mut() {
        chain.sort_unstable_by_key(|(ts, _)| *ts);
        // WW edges along the version order.
        for pair in chain.windows(2) {
            let (_, w1) = pair[0];
            let (_, w2) = pair[1];
            if w1 != w2 {
                edges[w1].insert(w2);
            }
        }
    }

    // WR and RW edges from the reads-from relation.
    for (i, txn) in txns.iter().enumerate() {
        for read in &txn.read_set {
            let Some(chain) = versions.get(&read.key) else {
                continue; // only ever-initial versions: no edges
            };
            match chain.binary_search_by_key(&read.wts, |(ts, _)| *ts) {
                Ok(pos) => {
                    let writer = chain[pos].1;
                    if writer != i {
                        edges[writer].insert(i); // WR
                    }
                    if let Some(&(_, next_writer)) = chain.get(pos + 1) {
                        if next_writer != i {
                            edges[i].insert(next_writer); // RW
                        }
                    }
                }
                Err(pos) => {
                    // Read a version not produced by any logged write
                    // (e.g. the initial version): anti-depend on the
                    // first overwriting transaction.
                    if let Some(&(_, next_writer)) = chain.get(pos) {
                        if next_writer != i {
                            edges[i].insert(next_writer); // RW
                        }
                    }
                }
            }
        }
    }

    // Iterative DFS cycle detection with colouring.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                color[node] = Color::Black;
                continue;
            }
            if color[node] == Color::Black {
                continue;
            }
            color[node] = Color::Grey;
            stack.push((node, true));
            for &next in &edges[node] {
                match color[next] {
                    Color::White => {
                        parent[next] = node;
                        stack.push((next, false));
                    }
                    Color::Grey => {
                        // Cycle: walk parents from node back to next.
                        let mut cycle = vec![txns[next].id];
                        let mut cur = node;
                        while cur != next && cur != usize::MAX {
                            cycle.push(txns[cur].id);
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return Err(cycle);
                    }
                    Color::Black => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_store::rwset::{ReadEntry, WriteEntry};

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    fn r(key: &str, wts: u64) -> ReadEntry {
        ReadEntry {
            key: Key::new(key),
            value: Value::from_i64(0),
            rts: Timestamp::ZERO,
            wts: ts(wts),
        }
    }

    fn w(key: &str) -> WriteEntry {
        WriteEntry {
            key: Key::new(key),
            new_value: Value::from_i64(1),
            old_value: None,
            rts: Timestamp::ZERO,
            wts: Timestamp::ZERO,
        }
    }

    fn txn(id: u64, reads: Vec<ReadEntry>, writes: Vec<WriteEntry>) -> TxnRecord {
        TxnRecord {
            id: ts(id),
            read_set: reads,
            write_set: writes,
        }
    }

    #[test]
    fn acyclic_history_passes() {
        // T1 writes x, T2 reads x then writes y, T3 reads y.
        let history = vec![
            txn(1, vec![], vec![w("x")]),
            txn(2, vec![r("x", 1)], vec![w("y")]),
            txn(3, vec![r("y", 2)], vec![]),
        ];
        assert!(serialization_graph_check(&history).is_ok());
    }

    #[test]
    fn rw_ww_cycle_detected() {
        // Write-skew made visible in the log: T1 read x@initial and
        // wrote y@1; T2 read y@initial (NOT T1's version) and wrote x@2.
        // Reads-from gives RW edges T1→T2 (x) and T2→T1 (y): a cycle.
        let history = vec![
            txn(1, vec![r("x", 0)], vec![w("y")]),
            txn(2, vec![r("y", 0)], vec![w("x")]),
        ];
        let err = serialization_graph_check(&history);
        assert!(err.is_err());
        let cycle = err.unwrap_err();
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn reads_from_later_version_is_acyclic_wr_edge() {
        // T2 reads the version T1 wrote: a single WR edge, no cycle.
        let history = vec![
            txn(1, vec![], vec![w("x")]),
            txn(2, vec![r("x", 1)], vec![]),
        ];
        assert!(serialization_graph_check(&history).is_ok());
    }

    #[test]
    fn ww_chain_is_acyclic() {
        let history = vec![
            txn(1, vec![], vec![w("x")]),
            txn(2, vec![], vec![w("x")]),
            txn(3, vec![], vec![w("x")]),
        ];
        assert!(serialization_graph_check(&history).is_ok());
    }

    #[test]
    fn self_conflicts_ignored() {
        // A txn that reads and writes the same key has no self-edge.
        let history = vec![txn(1, vec![r("x", 0)], vec![w("x")])];
        assert!(serialization_graph_check(&history).is_ok());
    }

    #[test]
    fn empty_history_passes() {
        assert!(serialization_graph_check(&[]).is_ok());
    }

    #[test]
    fn report_display_and_helpers() {
        let report = AuditReport {
            violations: vec![Violation {
                server: Some(2),
                height: Some(7),
                kind: ViolationKind::IncorrectRead {
                    txn: ts(9),
                    key: Key::new("x"),
                    expected: Value::from_i64(900),
                    observed: Value::from_i64(1000),
                },
            }],
            canonical_len: 10,
            canonical_base: 0,
            blocks_replayed: 10,
            lagging: Vec::new(),
        };
        assert!(!report.is_clean());
        assert_eq!(report.against_server(2).len(), 1);
        assert_eq!(report.against_server(0).len(), 0);
        assert_eq!(report.first().unwrap().height, Some(7));
        let text = report.to_string();
        assert!(text.contains("server 2"));
        assert!(text.contains("block 7"));
    }

    #[test]
    fn clean_report_displays() {
        let report = AuditReport {
            violations: vec![],
            canonical_len: 3,
            canonical_base: 0,
            blocks_replayed: 3,
            lagging: Vec::new(),
        };
        assert!(report.is_clean());
        assert!(report.to_string().contains("clean"));
        assert!(report.first().is_none());
    }
}
