//! Client sessions: the transaction life-cycle of Figure 5.
//!
//! Clients interact directly with the database servers (there is no
//! trusted front-end, §4.1): reads and writes go to the owning shard
//! server; termination requests go to the designated coordinator; the
//! final signed block comes back and the client verifies the collective
//! signature before accepting the outcome (§4.3.1 phase 5).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_crypto::encoding::{Decodable, Encodable};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_crypto::Digest;
use fides_ledger::block::{Block, Decision, TxnRecord};
use fides_net::{Endpoint, Envelope, NodeId};
use fides_read::{
    verify_read, ReadConsistency, ReadEvidence, ReadFault, ReadResponse, RootRegistry, VerifiedRead,
};
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::types::{Key, Timestamp, Value};
use fides_telemetry::trace::{now_ns, CLIENT_TAG_BASE};
use fides_telemetry::{Sampler, Span, SpanSink, TraceContext};

use crate::messages::{CommitProtocol, Message, ReadRefusal, TxnHandle};
use crate::partition::Partitioner;
use crate::server::{client_node, server_node, Directory};

/// A shared monotone counter from which clients derive commit
/// timestamps.
///
/// The paper only requires "a timestamp that supports total ordering …
/// as long as all clients use the same timestamp generating mechanism"
/// (§4.1); a shared atomic counter is the simplest such mechanism and
/// keeps end-transaction rejections (stale timestamps) out of the happy
/// path. The Lamport-style `(counter, client)` pair still totally
/// orders timestamps if clients ever race.
#[derive(Clone, Debug, Default)]
pub struct TimestampOracle(Arc<AtomicU64>);

impl TimestampOracle {
    /// Creates a fresh oracle starting above [`Timestamp::ZERO`].
    pub fn new() -> Self {
        TimestampOracle(Arc::new(AtomicU64::new(1)))
    }

    /// The next counter value (strictly increasing).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the counter to at least `floor`.
    pub fn advance_to(&self, floor: u64) {
        self.0.fetch_max(floor + 1, Ordering::Relaxed);
    }
}

/// Client-side state of one in-flight transaction.
#[derive(Debug)]
pub struct TxnCtx {
    handle: TxnHandle,
    /// Servers already sent a `Begin` (§4.1 step 1).
    begun: HashSet<u32>,
    /// Read set accumulated from read responses.
    reads: Vec<ReadEntry>,
    /// Keys read (to distinguish blind writes).
    read_keys: HashSet<Key>,
    /// Write intentions with the metadata from write acks.
    writes: Vec<WriteEntry>,
}

impl TxnCtx {
    /// The provisional transaction handle.
    pub fn handle(&self) -> TxnHandle {
        self.handle
    }

    /// Values read so far, in request order.
    pub fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }
}

/// The final, client-visible outcome of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed in the block at `height`.
    Committed {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Block height in the global log.
        height: u64,
    },
    /// The transaction (or its whole block) aborted.
    Aborted {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Height of the abort block.
        height: u64,
    },
    /// The returned block's collective signature did not verify — the
    /// client "detects an anomaly and triggers an audit" (§4.3.1).
    Anomaly {
        /// Assigned commit timestamp.
        ts: Timestamp,
    },
}

impl TxnOutcome {
    /// `true` only for a verified commit.
    pub fn committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// `true` when the client detected a protocol anomaly.
    pub fn is_anomaly(&self) -> bool {
        matches!(self, TxnOutcome::Anomaly { .. })
    }
}

/// A commit in flight on a pipelined client: everything needed to
/// retry a rejected timestamp and classify the eventual outcome.
#[derive(Debug)]
pub struct PendingCommit {
    /// The transaction's provisional handle.
    pub handle: TxnHandle,
    /// The (latest) commit timestamp assigned.
    pub ts: Timestamp,
    record: TxnRecord,
    attempts: u32,
    /// Sampled fides-trace root, closed when the outcome resolves.
    trace: Option<ClientTrace>,
}

/// A sampled commit's client-side trace state: the ids allocated at
/// submission, closed into a `client.commit` root span on resolution.
#[derive(Clone, Copy, Debug)]
struct ClientTrace {
    trace_id: u64,
    root_span: u64,
    start_ns: u64,
}

impl ClientTrace {
    /// The context end-txn envelopes carry: the round a leader runs for
    /// this transaction parents its spans under the client root.
    fn ctx(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: self.root_span,
        }
    }
}

/// An outcome whose collective signature has **not** been verified yet
/// — produced by [`ClientSession::drain_outcomes`], consumed in bulk by
/// [`finalize_outcomes`].
#[derive(Debug)]
pub struct UnverifiedOutcome {
    /// The transaction's handle.
    pub handle: TxnHandle,
    /// The commit timestamp the client assigned.
    pub ts: Timestamp,
    /// The signed decision block as received.
    pub block: Box<Block>,
}

/// Verifies a batch of outcomes' collective signatures with **one**
/// batched check (`cosi::verify_batch`, the random-linear-combination
/// fast path) instead of one full verification per outcome, then
/// classifies each as committed/aborted exactly like
/// [`ClientSession::commit`] — §4.3.1 phase 5 at batch cost.
///
/// Several outcomes routinely share one block (batched rounds), so the
/// signature work is deduplicated by height first. If the batch check
/// fails, each distinct block is re-verified individually and only the
/// offending outcomes degrade to [`TxnOutcome::Anomaly`].
///
/// Under the 2PC baseline blocks are unsigned; verification is skipped
/// as in the synchronous path.
pub fn finalize_outcomes(
    outcomes: Vec<UnverifiedOutcome>,
    server_pks: &[PublicKey],
    protocol: CommitProtocol,
) -> Vec<TxnOutcome> {
    use std::collections::HashMap;

    // Distinct blocks by height (identical heights carry identical
    // blocks in an honest run; an equivocating coordinator's copies
    // fail verification either way).
    let mut distinct: HashMap<u64, &Block> = HashMap::new();
    for outcome in &outcomes {
        distinct
            .entry(outcome.block.height)
            .or_insert(&outcome.block);
    }
    let verified: HashMap<u64, bool> = if protocol == CommitProtocol::TfCommit {
        let blocks: Vec<(u64, &Block)> = distinct.iter().map(|(h, b)| (*h, *b)).collect();
        let records: Vec<Vec<u8>> = blocks.iter().map(|(_, b)| b.signing_bytes()).collect();
        let items: Vec<(&[u8], fides_crypto::cosi::CollectiveSignature)> = records
            .iter()
            .map(Vec::as_slice)
            .zip(blocks.iter().map(|(_, b)| b.cosign))
            .collect();
        if fides_crypto::cosi::verify_batch(&items, server_pks) {
            blocks.iter().map(|(h, _)| (*h, true)).collect()
        } else {
            // Attribute: re-check each distinct block individually.
            blocks
                .iter()
                .zip(&records)
                .map(|((h, b), record)| (*h, b.cosign.verify(record, server_pks)))
                .collect()
        }
    } else {
        distinct.keys().map(|h| (*h, true)).collect()
    };

    outcomes
        .into_iter()
        .map(|outcome| {
            let ts = outcome.ts;
            let block = *outcome.block;
            if !verified.get(&block.height).copied().unwrap_or(false) {
                return TxnOutcome::Anomaly { ts };
            }
            let committed =
                block.decision == Decision::Commit && block.txns.iter().any(|t| t.id == ts);
            if committed {
                TxnOutcome::Committed {
                    ts,
                    height: block.height,
                }
            } else {
                TxnOutcome::Aborted {
                    ts,
                    height: block.height,
                }
            }
        })
        .collect()
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The owning server reported the key as absent.
    NoSuchKey(Key),
    /// No response arrived in time (crashed server or partition).
    Timeout(&'static str),
    /// The network shut down.
    Disconnected,
    /// The coordinator kept rejecting our timestamps.
    RetriesExhausted,
    /// The session has no read context (registry + evidence sink) —
    /// verified reads need [`ClientSession::with_read_context`].
    NoReadContext,
    /// Every eligible server honestly refused the read under the
    /// requested consistency (the last refusal is carried).
    ReadRefused(ReadRefusal),
    /// The read was refuted: the targeted server served a response that
    /// failed verification (evidence was filed) and no honest fallback
    /// could satisfy the request.
    ReadRefuted(ReadFault),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClientError::Disconnected => write!(f, "network disconnected"),
            ClientError::RetriesExhausted => write!(f, "coordinator kept rejecting timestamps"),
            ClientError::NoReadContext => {
                write!(
                    f,
                    "verified reads need a read context (registry + evidence sink)"
                )
            }
            ClientError::ReadRefused(reason) => {
                write!(f, "every eligible server refused the read: {reason}")
            }
            ClientError::ReadRefuted(fault) => write!(f, "read refuted: {fault}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client session bound to one endpoint.
pub struct ClientSession {
    id: u32,
    endpoint: Endpoint,
    keypair: KeyPair,
    directory: Directory,
    partitioner: Partitioner,
    server_pks: Vec<PublicKey>,
    oracle: TimestampOracle,
    protocol: CommitProtocol,
    seq: u64,
    op_timeout: Duration,
    /// Commit traffic (outcomes/rejections) that arrived while waiting
    /// for an execution-phase response — a pipelined client's earlier
    /// transactions resolving mid-read. Consumed by
    /// [`ClientSession::drain_outcomes`].
    stash: std::collections::VecDeque<Message>,
    /// Verified-read-plane state (`None` until
    /// [`ClientSession::with_read_context`] attaches it).
    read: Option<ReadContext>,
    /// The cluster rotates commit leadership by height
    /// ([`crate::server::leader_for_height`]): end-txn traffic aims at
    /// the estimated frontier leader instead of the fixed coordinator.
    rotate_leaders: bool,
    /// Estimated next block height, advanced by every outcome observed.
    /// A stale estimate only mis-aims an end-txn, which the receiving
    /// server forwards to the true leader.
    est_height: u64,
    /// fides-trace head sampling: 1-in-N commits (`FIDES_TRACE_SAMPLE`)
    /// carry a [`TraceContext`] on their end-txn envelopes.
    sampler: Sampler,
    /// This client's finished spans (the `client.commit` round-trip
    /// roots), tagged `CLIENT_TAG_BASE + id`.
    spans: Arc<SpanSink>,
}

/// Finished spans retained per client — commits are sampled, so a
/// small ring holds plenty.
const CLIENT_SPAN_CAPACITY: usize = 1024;

/// The verified read plane's client-side state.
struct ReadContext {
    /// Co-signed root cache (seeded with genesis, fed by headers and
    /// outcomes).
    registry: RootRegistry,
    /// Where refuted reads are filed (shared with the harness, folded
    /// into audits as `TamperedRead` violations).
    evidence: Arc<parking_lot::Mutex<Vec<ReadEvidence>>>,
    /// Round-robin cursor for mirror load-balancing.
    next_target: u32,
    /// Request id sequence.
    req_seq: u64,
    /// Accumulated read metrics.
    stats: ReadStats,
    /// Negative cache: `(server, shard)` pairs that recently answered
    /// `NoSnapshot`, skipped in the rotation until the entry expires —
    /// a mirror-less cluster degrades to straight owner reads instead
    /// of paying refused round trips on every read.
    no_mirror: std::collections::HashMap<(u32, u32), Instant>,
}

/// How long a `NoSnapshot` refusal keeps a `(server, shard)` pair out
/// of the read rotation (mirrors appear at checkpoint cadence, so a
/// short TTL re-probes soon enough).
const NO_MIRROR_TTL: Duration = Duration::from_secs(2);

/// Client-side verified-read metrics (drained by
/// [`ClientSession::take_read_stats`]).
#[derive(Debug, Default, Clone)]
pub struct ReadStats {
    /// Verified read-only requests completed.
    pub reads: u64,
    /// Keys proof-verified across those reads.
    pub keys_read: u64,
    /// Honest refusals observed while retargeting (repairing peers,
    /// missing mirrors, staleness bounds).
    pub refusals: u64,
    /// Root-registry cache effectiveness (hits avoid a header
    /// signature verification on the read path).
    pub registry: fides_read::RegistryStats,
    /// Per-response proof-verification latency
    /// ([`fides_read::verify_read`]), nanoseconds.
    pub verify_ns: fides_telemetry::Histogram,
    /// Staleness per verified read: observed
    /// `known_tip − covered_height` in blocks.
    pub staleness: fides_telemetry::Histogram,
}

impl ReadStats {
    /// Total nanoseconds spent inside proof verification.
    pub fn verify_nanos(&self) -> u64 {
        self.verify_ns.snapshot().sum
    }

    /// Folds another client's stats into this one (bench aggregation).
    pub fn merge(&mut self, other: &ReadStats) {
        self.reads += other.reads;
        self.keys_read += other.keys_read;
        self.refusals += other.refusals;
        self.registry.merge(&other.registry);
        self.verify_ns.merge(&other.verify_ns);
        self.staleness.merge(&other.staleness);
    }
}

/// What one snapshot-read attempt against one server produced.
enum ReadAttempt {
    /// Verified values.
    Ok(VerifiedRead),
    /// Honest refusal — retarget, no evidence.
    Refused(ReadRefusal),
    /// Refuted response — evidence filed against the server.
    Refuted(ReadFault),
    /// No (matching) response before the deadline.
    TimedOut,
}

impl ClientSession {
    /// Assembles a session (normally via
    /// [`crate::system::FidesCluster::client`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
        oracle: TimestampOracle,
        protocol: CommitProtocol,
    ) -> Self {
        ClientSession {
            id,
            endpoint,
            keypair,
            directory,
            partitioner,
            server_pks,
            oracle,
            protocol,
            seq: 0,
            op_timeout: Duration::from_secs(10),
            stash: std::collections::VecDeque::new(),
            read: None,
            rotate_leaders: false,
            est_height: 0,
            sampler: Sampler::from_env(),
            // Node tags are 16-bit; ids above the 61 440 client-tag
            // slots wrap rather than panic.
            spans: Arc::new(SpanSink::new(
                CLIENT_TAG_BASE + (id as u64 % ((1 << 16) - CLIENT_TAG_BASE)),
                CLIENT_SPAN_CAPACITY,
            )),
        }
    }

    /// Enables rotating-leadership targeting: end-txn traffic goes to
    /// `leader_for_height(estimated next height)` instead of the fixed
    /// coordinator. Wired by [`crate::system::FidesCluster::client`]
    /// when the cluster rotates.
    pub fn with_rotation(mut self, rotate: bool) -> Self {
        self.rotate_leaders = rotate;
        self
    }

    /// Where to aim the next end-transaction request.
    fn commit_target(&self) -> u32 {
        crate::server::leader_for_height(
            self.est_height,
            self.partitioner.n_servers(),
            self.rotate_leaders,
        )
    }

    /// Folds an observed outcome height into the frontier estimate.
    fn note_outcome_height(&mut self, height: u64) {
        self.est_height = self.est_height.max(height + 1);
    }

    /// Attaches the verified read plane: the trusted genesis composite
    /// roots (one per shard — the same standing trust as the server
    /// public keys) and the shared evidence sink refuted reads are
    /// filed into. Normally wired by
    /// [`crate::system::FidesCluster::client`].
    pub fn with_read_context(
        mut self,
        genesis_roots: Vec<Digest>,
        evidence: Arc<parking_lot::Mutex<Vec<ReadEvidence>>>,
    ) -> Self {
        self.read = Some(ReadContext {
            registry: RootRegistry::new(self.server_pks.clone(), genesis_roots),
            evidence,
            next_target: self.id % self.partitioner.n_servers(),
            req_seq: 0,
            stats: ReadStats::default(),
            no_mirror: std::collections::HashMap::new(),
        });
        self
    }

    /// Drains the accumulated verified-read metrics (the root
    /// registry's cache counters folded in).
    pub fn take_read_stats(&mut self) -> ReadStats {
        self.read
            .as_mut()
            .map(|ctx| {
                let mut stats = std::mem::take(&mut ctx.stats);
                stats.registry = ctx.registry.stats.take();
                stats
            })
            .unwrap_or_default()
    }

    /// The newest co-signed chain tip this client has evidence for.
    pub fn known_tip(&self) -> u64 {
        self.read.as_ref().map_or(0, |ctx| ctx.registry.known_tip())
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Starts a new transaction (Figure 5 step 1 happens lazily per
    /// server on first access).
    pub fn begin(&mut self) -> TxnCtx {
        self.seq += 1;
        TxnCtx {
            handle: TxnHandle {
                client: self.id,
                seq: self.seq,
            },
            begun: HashSet::new(),
            reads: Vec::new(),
            read_keys: HashSet::new(),
            writes: Vec::new(),
        }
    }

    fn send_to(&self, server: u32, msg: &Message) {
        self.send_to_traced(server, msg, None);
    }

    fn send_to_traced(&self, server: u32, msg: &Message, trace: Option<TraceContext>) {
        let env = Envelope::sign_traced(
            &self.keypair,
            client_node(self.id),
            server_node(server),
            msg.encode(),
            trace,
        );
        self.endpoint.send(env);
    }

    /// Decides whether this commit is traced and allocates its ids.
    fn sample_commit(&self) -> Option<ClientTrace> {
        self.sampler.sample().then(|| ClientTrace {
            trace_id: self.spans.next_id(),
            root_span: self.spans.next_id(),
            start_ns: now_ns(),
        })
    }

    /// Closes a sampled commit's `client.commit` root span — the
    /// client-observed round trip, submission to resolved outcome.
    fn close_commit_trace(&self, trace: Option<ClientTrace>, handle: TxnHandle) {
        if let Some(t) = trace {
            self.spans.close(
                t.trace_id,
                t.root_span,
                0,
                "client.commit",
                t.start_ns,
                handle.seq,
            );
        }
    }

    /// This client's finished spans (sampled `client.commit` round
    /// trips) — append to [`crate::FidesCluster::dump_traces`] output
    /// for the complete cross-node picture.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.snapshot()
    }

    /// Waits for a message matching `want`. Commit traffic for other
    /// in-flight transactions (outcomes, rejections) is stashed for
    /// [`ClientSession::drain_outcomes`]; anything else is dropped.
    fn wait_for<T>(
        &mut self,
        what: &'static str,
        want: impl FnMut(NodeId, Message) -> Option<T>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.op_timeout;
        self.wait_for_until(what, deadline, want)
    }

    /// [`ClientSession::wait_for`] against an explicit deadline.
    fn wait_for_until<T>(
        &mut self,
        what: &'static str,
        deadline: Instant,
        mut want: impl FnMut(NodeId, Message) -> Option<T>,
    ) -> Result<T, ClientError> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout(what));
            }
            match self.endpoint.recv_timeout(deadline - now) {
                Ok(env) => {
                    let Some(pk) = self.directory.get(&env.from) else {
                        continue;
                    };
                    if !env.verify(pk) {
                        continue;
                    }
                    let Ok(msg) = Message::decode(&env.payload) else {
                        continue;
                    };
                    match want(env.from, msg) {
                        Some(out) => return Ok(out),
                        None => {
                            // `want` consumed the message; nothing to
                            // stash — it only declines by returning
                            // None *without* taking ownership semantics
                            // we can observe, so re-decode to check for
                            // commit traffic worth keeping.
                            if let Ok(msg) = Message::decode(&env.payload) {
                                if matches!(
                                    msg,
                                    Message::Outcome { .. } | Message::EndTxnRejected { .. }
                                ) {
                                    self.stash.push_back(msg);
                                }
                            }
                        }
                    }
                }
                Err(fides_net::RecvError::Timeout) => return Err(ClientError::Timeout(what)),
                Err(fides_net::RecvError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    fn ensure_begun(&mut self, txn: &mut TxnCtx, server: u32) {
        if txn.begun.insert(server) {
            self.send_to(server, &Message::Begin { txn: txn.handle });
        }
    }

    /// Reads one item (Figure 5 steps 2–3). The observed value and
    /// timestamps join the read set.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoSuchKey`] if the owning server does not store
    /// the key; timeout/disconnect errors on network failure.
    pub fn read(&mut self, txn: &mut TxnCtx, key: &Key) -> Result<Value, ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Read {
                txn: txn.handle,
                key: key.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let entry = self.wait_for("read response", move |_, msg| match msg {
            Message::ReadResp {
                txn: t,
                key: k,
                value,
                rts,
                wts,
            } if t == handle && k == want_key => Some(Ok(ReadEntry {
                key: k,
                value,
                rts,
                wts,
            })),
            Message::ReadErr { txn: t, key: k } if t == handle && k == want_key => {
                Some(Err(ClientError::NoSuchKey(k)))
            }
            _ => None,
        })??;
        // Lamport rule: our next timestamp must exceed what we observed.
        self.oracle
            .advance_to(entry.rts.counter().max(entry.wts.counter()));
        let value = entry.value.clone();
        txn.read_keys.insert(entry.key.clone());
        txn.reads.push(entry);
        Ok(value)
    }

    /// Buffers a write at the owning server (Figure 5 steps 2–3). For a
    /// blind write (key not previously read) the acknowledgement's old
    /// value is recorded in the write set (§4.2.1).
    pub fn write(&mut self, txn: &mut TxnCtx, key: &Key, value: Value) -> Result<(), ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Write {
                txn: txn.handle,
                key: key.clone(),
                value: value.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let old = self.wait_for("write ack", move |_, msg| match msg {
            Message::WriteAck {
                txn: t,
                key: k,
                old,
            } if t == handle && k == want_key => Some(old),
            _ => None,
        })?;

        let was_read = txn.read_keys.contains(key);
        let (old_value, rts, wts) = match (&old, was_read) {
            // Blind write: remember the pre-image (§4.2.1).
            (Some((v, r, w)), false) => (Some(v.clone()), *r, *w),
            // Read-then-write: the read entry already holds the pre-image.
            (Some((_, r, w)), true) => (None, *r, *w),
            (None, _) => (None, Timestamp::ZERO, Timestamp::ZERO),
        };
        if let Some((_, r, w)) = &old {
            self.oracle.advance_to(r.counter().max(w.counter()));
        }
        txn.writes.push(WriteEntry {
            key: key.clone(),
            new_value: value,
            old_value,
            rts,
            wts,
        });
        Ok(())
    }

    /// Terminates the transaction (Figure 5 steps 4–8): assigns the
    /// commit timestamp, sends the end-transaction request to the
    /// coordinator, waits for the signed block, verifies the collective
    /// signature and extracts the decision.
    ///
    /// # Errors
    ///
    /// Network errors; [`ClientError::RetriesExhausted`] if the
    /// coordinator keeps rejecting our timestamps.
    pub fn commit(&mut self, txn: TxnCtx) -> Result<TxnOutcome, ClientError> {
        let handle = txn.handle;
        // One sampling decision per transaction; retries re-send the
        // same context, so the whole retry tail lands in one trace.
        let trace = self.sample_commit();
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 16 {
                return Err(ClientError::RetriesExhausted);
            }
            let ts = Timestamp::new(self.oracle.next(), self.id);
            let record = TxnRecord {
                id: ts,
                read_set: txn.reads.clone(),
                write_set: txn.writes.clone(),
            };
            self.send_to_traced(
                self.commit_target(),
                &Message::EndTxn { handle, record },
                trace.map(|t| t.ctx()),
            );

            enum Reply {
                Outcome(Box<Block>),
                Rejected(Timestamp),
            }
            let reply = self.wait_for("transaction outcome", move |_, msg| match msg {
                Message::Outcome { handles, block } if handles.contains(&handle) => {
                    Some(Reply::Outcome(Box::new(block)))
                }
                Message::EndTxnRejected { handle: h, hint } if h == handle => {
                    Some(Reply::Rejected(hint))
                }
                _ => None,
            })?;

            match reply {
                Reply::Rejected(hint) => {
                    self.oracle.advance_to(hint.counter());
                    continue;
                }
                Reply::Outcome(block) => {
                    let block = *block;
                    // The round trip is over whatever the verdict —
                    // close the sampled root span before classifying.
                    self.close_commit_trace(trace, handle);
                    // §4.3.1 phase 5: "The client, with the public keys of
                    // all the servers, verifies the co-sign before
                    // accepting the decision."
                    if self.protocol == CommitProtocol::TfCommit
                        && !block
                            .cosign
                            .verify(&block.signing_bytes(), &self.server_pks)
                    {
                        return Ok(TxnOutcome::Anomaly { ts });
                    }
                    // A verified outcome feeds the read plane's root
                    // registry for free (commit roots only — an abort
                    // block's roots are speculative).
                    if let Some(ctx) = &mut self.read {
                        if block.decision == Decision::Commit {
                            ctx.registry
                                .note_verified_roots(block.height + 1, &block.roots);
                        } else {
                            ctx.registry.note_tip(block.height + 1);
                        }
                    }
                    self.oracle
                        .advance_to(block.max_txn_ts().map_or(0, |t| t.counter()));
                    let height = block.height;
                    self.note_outcome_height(height);
                    let committed =
                        block.decision == Decision::Commit && block.txns.iter().any(|t| t.id == ts);
                    return Ok(if committed {
                        TxnOutcome::Committed { ts, height }
                    } else {
                        TxnOutcome::Aborted { ts, height }
                    });
                }
            }
        }
    }

    /// Receives until at least one authenticated message is available,
    /// draining the transport in bursts whose signatures are verified
    /// with **one** batched check
    /// ([`fides_net::Endpoint::recv_verified_burst`]).
    fn recv_auth_burst(&mut self, deadline: Instant) -> Result<Vec<Message>, ClientError> {
        const MAX_BURST: usize = 32;
        loop {
            let burst =
                match self
                    .endpoint
                    .recv_verified_burst(deadline, &self.directory, MAX_BURST)
                {
                    Ok(burst) => burst,
                    Err(fides_net::RecvError::Timeout) => {
                        return Err(ClientError::Timeout("batched responses"))
                    }
                    Err(fides_net::RecvError::Disconnected) => {
                        return Err(ClientError::Disconnected)
                    }
                };
            let messages: Vec<Message> = burst
                .iter()
                .filter_map(|env| Message::decode(&env.payload).ok())
                .collect();
            if !messages.is_empty() {
                return Ok(messages);
            }
        }
    }

    /// Reads several **distinct** keys in one shot: the keys are
    /// grouped by owning server and each group goes out as **one**
    /// signed [`Message::ReadMany`]; the per-server responses come back
    /// with burst batch-verified signatures. One round of waiting and
    /// roughly one signature per *server* instead of per *key* — the
    /// execution layer's answer to block batching. Values return in
    /// input order; all entries join the read set.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoSuchKey`] if any key is absent; network errors.
    pub fn read_all(&mut self, txn: &mut TxnCtx, keys: &[Key]) -> Result<Vec<Value>, ClientError> {
        use std::collections::HashMap;
        // No explicit `Begin` round: reads need no server-side state and
        // the server creates write buffers lazily — Figure 5 step 1 is
        // implicit in the first operation, saving one signed message per
        // involved server per transaction.
        let mut per_server: HashMap<u32, Vec<Key>> = HashMap::new();
        for key in keys {
            per_server
                .entry(self.partitioner.owner(key))
                .or_default()
                .push(key.clone());
        }
        for (server, group) in per_server {
            txn.begun.insert(server);
            self.send_to(
                server,
                &Message::ReadMany {
                    txn: txn.handle,
                    keys: group,
                },
            );
        }
        let wanted: HashSet<&Key> = keys.iter().collect();
        let mut entries: HashMap<Key, ReadEntry> = HashMap::new();
        let deadline = Instant::now() + self.op_timeout;
        while entries.len() < wanted.len() {
            for msg in self.recv_auth_burst(deadline)? {
                match msg {
                    Message::ReadManyResp { txn: t, items } if t == txn.handle => {
                        for (key, state) in items {
                            if !wanted.contains(&key) {
                                continue;
                            }
                            let Some((value, rts, wts)) = state else {
                                return Err(ClientError::NoSuchKey(key));
                            };
                            entries.entry(key.clone()).or_insert(ReadEntry {
                                key,
                                value,
                                rts,
                                wts,
                            });
                        }
                    }
                    msg @ (Message::Outcome { .. } | Message::EndTxnRejected { .. }) => {
                        self.stash.push_back(msg);
                    }
                    _ => {}
                }
            }
        }
        let mut values = Vec::with_capacity(keys.len());
        for key in keys {
            // `get` rather than `remove`: a duplicate key in the input
            // yields one read request but two read-set entries, exactly
            // like two sequential `read` calls would.
            let entry = entries.get(key).cloned().expect("collected above");
            self.oracle
                .advance_to(entry.rts.counter().max(entry.wts.counter()));
            values.push(entry.value.clone());
            txn.read_keys.insert(entry.key.clone());
            txn.reads.push(entry);
        }
        Ok(values)
    }

    /// Buffers writes to several **distinct** keys in one shot — the
    /// batched counterpart of [`ClientSession::write`].
    ///
    /// Writes to keys **already read in this transaction** are buffered
    /// purely client-side: the owner's write-ack round trip would only
    /// repeat metadata the read already returned (commit-time OCC
    /// validates against the owner's live state either way, and the
    /// block carries the full write set). Blind writes still consult
    /// the owner for the pre-image (§4.2.1); their acks are collected
    /// with burst batch-verified signatures.
    ///
    /// # Errors
    ///
    /// Network errors (timeout, disconnect).
    pub fn write_all(
        &mut self,
        txn: &mut TxnCtx,
        writes: &[(Key, Value)],
    ) -> Result<(), ClientError> {
        use std::collections::HashMap;
        let mut blind: Vec<&(Key, Value)> = Vec::new();
        for entry @ (key, value) in writes {
            if txn.read_keys.contains(key) {
                // Read-then-write: the read entry already pinned the
                // version this write supersedes.
                let (rts, wts) = txn
                    .reads
                    .iter()
                    .find(|r| &r.key == key)
                    .map(|r| (r.rts, r.wts))
                    .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
                txn.writes.push(WriteEntry {
                    key: key.clone(),
                    new_value: value.clone(),
                    old_value: None,
                    rts,
                    wts,
                });
            } else {
                blind.push(entry);
            }
        }
        if blind.is_empty() {
            return Ok(());
        }
        for (key, value) in &blind {
            let server = self.partitioner.owner(key);
            txn.begun.insert(server);
            self.send_to(
                server,
                &Message::Write {
                    txn: txn.handle,
                    key: key.clone(),
                    value: value.clone(),
                },
            );
        }
        let wanted: HashSet<&Key> = blind.iter().map(|(k, _)| k).collect();
        type OldState = Option<(Value, Timestamp, Timestamp)>;
        let mut acks: HashMap<Key, OldState> = HashMap::new();
        let deadline = Instant::now() + self.op_timeout;
        while acks.len() < wanted.len() {
            for msg in self.recv_auth_burst(deadline)? {
                match msg {
                    Message::WriteAck { txn: t, key, old }
                        if t == txn.handle && wanted.contains(&key) =>
                    {
                        acks.entry(key).or_insert(old);
                    }
                    msg @ (Message::Outcome { .. } | Message::EndTxnRejected { .. }) => {
                        self.stash.push_back(msg);
                    }
                    _ => {}
                }
            }
        }
        for (key, value) in &blind {
            // `get` rather than `remove`: duplicate blind-write keys
            // share one ack but still produce one write entry each.
            let old = acks.get(key).cloned().expect("collected above");
            let (old_value, rts, wts) = match &old {
                Some((v, r, w)) => (Some(v.clone()), *r, *w),
                None => (None, Timestamp::ZERO, Timestamp::ZERO),
            };
            if let Some((_, r, w)) = &old {
                self.oracle.advance_to(r.counter().max(w.counter()));
            }
            txn.writes.push(WriteEntry {
                key: key.clone(),
                new_value: value.clone(),
                old_value,
                rts,
                wts,
            });
        }
        Ok(())
    }

    /// Starts terminating `txn` **without blocking**: the
    /// end-transaction request is sent and a [`PendingCommit`] records
    /// what is needed to retry and to classify the outcome. Combine
    /// with [`ClientSession::drain_outcomes`] to keep several
    /// transactions in flight, then [`finalize_outcomes`] to verify all
    /// their collective signatures **in one batch** — the client-side
    /// ride on `verify_batch` instead of one full Schnorr verification
    /// per outcome.
    pub fn commit_async(&mut self, txn: TxnCtx) -> PendingCommit {
        let trace = self.sample_commit();
        let ts = Timestamp::new(self.oracle.next(), self.id);
        let record = TxnRecord {
            id: ts,
            read_set: txn.reads.clone(),
            write_set: txn.writes.clone(),
        };
        self.send_to_traced(
            self.commit_target(),
            &Message::EndTxn {
                handle: txn.handle,
                record: record.clone(),
            },
            trace.map(|t| t.ctx()),
        );
        PendingCommit {
            handle: txn.handle,
            ts,
            record,
            attempts: 1,
            trace,
        }
    }

    /// Services the in-flight commits of a pipelined client: receives
    /// until `deadline` (or until every pending commit resolved),
    /// retrying rejected timestamps, and returns the **unverified**
    /// outcomes that arrived. Resolved entries are removed from
    /// `pending`.
    ///
    /// The returned outcomes' collective signatures have *not* been
    /// checked yet — pass them (in any quantity, across calls) to
    /// [`finalize_outcomes`], which batch-verifies all of them at once.
    pub fn drain_outcomes(
        &mut self,
        pending: &mut Vec<PendingCommit>,
        deadline: Instant,
    ) -> Vec<UnverifiedOutcome> {
        let mut resolved = Vec::new();
        let mut queue: Vec<Message> = Vec::new();
        while !pending.is_empty() {
            // Commit traffic stashed during execution-phase waits first,
            // then bursts off the wire (signatures batch-verified —
            // a block's outcomes land together after the covering
            // fsync, so bursts are the common case).
            let msg = if let Some(msg) = self.stash.pop_front() {
                msg
            } else if let Some(msg) = queue.pop() {
                msg
            } else {
                if Instant::now() >= deadline {
                    break;
                }
                match self.recv_auth_burst(deadline) {
                    Ok(mut messages) => {
                        messages.reverse(); // pop() restores arrival order
                        queue = messages;
                        continue;
                    }
                    Err(_) => break,
                }
            };
            match msg {
                Message::Outcome { handles, block } => {
                    self.oracle
                        .advance_to(block.max_txn_ts().map_or(0, |t| t.counter()));
                    self.note_outcome_height(block.height);
                    let block = Box::new(block);
                    for handle in handles {
                        if let Some(at) = pending.iter().position(|p| p.handle == handle) {
                            let commit = pending.swap_remove(at);
                            self.close_commit_trace(commit.trace, handle);
                            resolved.push(UnverifiedOutcome {
                                handle,
                                ts: commit.ts,
                                block: block.clone(),
                            });
                        }
                    }
                }
                Message::EndTxnRejected { handle, hint } => {
                    if let Some(commit) = pending.iter_mut().find(|p| p.handle == handle) {
                        self.oracle.advance_to(hint.counter());
                        commit.attempts += 1;
                        if commit.attempts > 16 {
                            // Give up: the commit is dropped from
                            // `pending` and produces **no** outcome —
                            // callers account for it as the difference
                            // between submissions and finalized
                            // outcomes (mirrors the synchronous path's
                            // `RetriesExhausted`).
                            let at = pending
                                .iter()
                                .position(|p| p.handle == handle)
                                .expect("found above");
                            let _ = pending.swap_remove(at);
                            continue;
                        }
                        let ts = Timestamp::new(self.oracle.next(), self.id);
                        commit.ts = ts;
                        commit.record.id = ts;
                        let msg = Message::EndTxn {
                            handle,
                            record: commit.record.clone(),
                        };
                        let trace = commit.trace.map(|t| t.ctx());
                        let target = self.commit_target();
                        self.send_to_traced(target, &msg, trace);
                    }
                }
                _ => {}
            }
        }
        resolved
    }

    /// Convenience: a read-modify-write transaction over `keys`, adding
    /// `delta` to each numeric value — the benchmark's 5-operation
    /// multi-record transaction shape (§6).
    pub fn run_rmw(&mut self, keys: &[Key], delta: i64) -> Result<TxnOutcome, ClientError> {
        let mut txn = self.begin();
        let mut staged = Vec::with_capacity(keys.len());
        for key in keys {
            let value = self.read(&mut txn, key)?;
            let next = Value::from_i64(value.as_i64().unwrap_or(0) + delta);
            staged.push((key.clone(), next));
        }
        for (key, next) in staged {
            self.write(&mut txn, &key, next)?;
        }
        self.commit(txn)
    }

    /// [`ClientSession::run_rmw`] on the batched execution path: all
    /// reads go out together (burst-verified responses), read-then-write
    /// writes buffer client-side, and the outcome is verified
    /// synchronously — the closed-loop shape with batch-priced crypto.
    pub fn run_rmw_batched(&mut self, keys: &[Key], delta: i64) -> Result<TxnOutcome, ClientError> {
        let mut txn = self.begin();
        let values = self.read_all(&mut txn, keys)?;
        let writes: Vec<(Key, Value)> = keys
            .iter()
            .zip(values)
            .map(|(key, value)| {
                (
                    key.clone(),
                    Value::from_i64(value.as_i64().unwrap_or(0) + delta),
                )
            })
            .collect();
        self.write_all(&mut txn, &writes)?;
        self.commit(txn)
    }

    /// Overrides the per-operation timeout (tests exercising crash
    /// paths use short values).
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    // ------------------------------------------------------------------
    // The verified read plane (see `docs/reads.md`): read-only
    // transactions that hit one server per shard, verify every value
    // (and every absence) against a cached co-signed root, and never
    // enter a commit round.
    // ------------------------------------------------------------------

    /// Reads `keys` without a commit round, proof-verifying every
    /// value (and absence) client-side. Keys are grouped per owning
    /// shard; each group is served by one server — the owner for
    /// [`ReadConsistency::Fresh`], any server (load-balanced across
    /// owners **and** checkpoint-mirror holders, with owner fallback)
    /// for bounded-staleness and pinned reads. Returns values in input
    /// order; `None` = proven absent.
    ///
    /// A server answering with a forged value, a forged absence, or a
    /// stale-beyond-bound root is refuted here and filed as
    /// [`ReadEvidence`] for the audit; honest refusals (repairing, no
    /// mirror, too stale) retarget silently.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoReadContext`] without a read context; timeout/
    /// refusal/refutation errors when no eligible server could serve.
    pub fn read_only(
        &mut self,
        keys: &[Key],
        consistency: ReadConsistency,
    ) -> Result<Vec<Option<Value>>, ClientError> {
        use std::collections::HashMap;
        if self.read.is_none() {
            return Err(ClientError::NoReadContext);
        }
        let mut per_shard: HashMap<u32, Vec<Key>> = HashMap::new();
        for key in keys {
            let group = per_shard.entry(self.partitioner.owner(key)).or_default();
            if !group.contains(key) {
                group.push(key.clone());
            }
        }
        let groups: Vec<(u32, Vec<Key>)> = per_shard.into_iter().collect();
        let mut resolved: HashMap<Key, Option<Value>> = HashMap::new();
        // Fast path: every shard's request goes out at once (one round
        // of waiting for the whole read set); shards whose fast attempt
        // fails fall back to the robust per-shard retry loop.
        let fallback = self.read_shards_parallel(&groups, consistency, &mut resolved)?;
        for idx in fallback {
            let (shard, group) = &groups[idx];
            let verified = self.read_shard(*shard, group, consistency)?;
            for (key, value) in group.iter().zip(verified.values) {
                resolved.insert(key.clone(), value);
            }
        }
        Ok(keys
            .iter()
            .map(|k| resolved.get(k).cloned().expect("every key resolved"))
            .collect())
    }

    /// One parallel fan-out attempt: a single `SnapshotRead` per shard
    /// group, all outstanding at once. Successes land in `resolved`;
    /// the returned indices need the sequential fallback.
    fn read_shards_parallel(
        &mut self,
        groups: &[(u32, Vec<Key>)],
        consistency: ReadConsistency,
        resolved: &mut std::collections::HashMap<Key, Option<Value>>,
    ) -> Result<Vec<usize>, ClientError> {
        use fides_ledger::block::BlockHeader;
        use fides_store::ShardReadProof;
        let n = self.partitioner.n_servers();
        // req id → (group index, target, min_covered).
        let mut outstanding: std::collections::HashMap<u64, (usize, u32, u64)> =
            std::collections::HashMap::new();
        for (idx, (shard, group)) in groups.iter().enumerate() {
            let ctx = self.read.as_mut().expect("checked by caller");
            let target = match consistency {
                ReadConsistency::Fresh => *shard,
                _ => {
                    let start = ctx.next_target;
                    ctx.next_target = (ctx.next_target + 1) % n;
                    let now = Instant::now();
                    ctx.no_mirror
                        .retain(|_, at| now.duration_since(*at) < NO_MIRROR_TTL);
                    (0..n)
                        .map(|i| (start + i) % n)
                        .find(|s| *s == *shard || !ctx.no_mirror.contains_key(&(*s, *shard)))
                        .unwrap_or(*shard)
                }
            };
            let req = ctx.req_seq;
            ctx.req_seq += 1;
            let min_covered = consistency.min_covered(ctx.registry.known_tip());
            let at_height = match consistency {
                ReadConsistency::AtHeight(h) => Some(h),
                _ => None,
            };
            outstanding.insert(req, (idx, target, min_covered));
            self.send_to(
                target,
                &Message::SnapshotRead {
                    req,
                    shard: *shard,
                    keys: group.clone(),
                    min_covered,
                    at_height,
                },
            );
        }
        let deadline = Instant::now() + self.op_timeout;
        let mut fallback: Vec<usize> = Vec::new();
        while !outstanding.is_empty() {
            type Parts = (u64, u64, Option<Box<BlockHeader>>, Box<ShardReadProof>);
            enum Reply {
                Resp(u64, Parts),
                Refused(u64, ReadRefusal),
            }
            let reqs: Vec<u64> = outstanding.keys().copied().collect();
            let reply = self.wait_for_until("snapshot reads", deadline, |_, msg| match msg {
                Message::SnapshotReadResp {
                    req,
                    root_height,
                    covered_height,
                    header,
                    proof,
                    ..
                } if reqs.contains(&req) => Some(Reply::Resp(
                    req,
                    (root_height, covered_height, header, proof),
                )),
                Message::SnapshotReadRefused { req, reason } if reqs.contains(&req) => {
                    Some(Reply::Refused(req, reason))
                }
                _ => None,
            });
            let reply = match reply {
                Ok(reply) => reply,
                Err(ClientError::Timeout(_)) => break,
                Err(e) => return Err(e),
            };
            match reply {
                Reply::Refused(req, reason) => {
                    let (idx, target, _) = outstanding.remove(&req).expect("outstanding");
                    if matches!(reason, ReadRefusal::NoSnapshot) {
                        let ctx = self.read.as_mut().expect("checked by caller");
                        ctx.no_mirror
                            .insert((target, groups[idx].0), Instant::now());
                    }
                    fallback.push(idx);
                }
                Reply::Resp(req, (root_height, covered, header, proof)) => {
                    let (idx, target, min_covered) = outstanding.remove(&req).expect("outstanding");
                    let (shard, group) = &groups[idx];
                    let pinned = match consistency {
                        ReadConsistency::AtHeight(h) => Some(h),
                        _ => None,
                    };
                    match self.classify_response(
                        target,
                        *shard,
                        group,
                        min_covered,
                        pinned,
                        root_height,
                        covered,
                        header.as_deref(),
                        &proof,
                    ) {
                        Ok(verified) => {
                            for (key, value) in group.iter().zip(verified.values) {
                                resolved.insert(key.clone(), value);
                            }
                        }
                        Err(_) => fallback.push(idx),
                    }
                }
            }
        }
        // Anything still outstanding timed out: fall back.
        for (_, (idx, _, _)) in outstanding {
            fallback.push(idx);
        }
        Ok(fallback)
    }

    /// Verifies one response's parts, updating stats and filing
    /// evidence on evidence-grade faults — shared by the sequential and
    /// parallel read paths.
    #[allow(clippy::too_many_arguments)]
    fn classify_response(
        &mut self,
        target: u32,
        shard: u32,
        keys: &[Key],
        min_covered: u64,
        pinned: Option<u64>,
        root_height: u64,
        covered: u64,
        header: Option<&fides_ledger::block::BlockHeader>,
        proof: &fides_store::ShardReadProof,
    ) -> Result<VerifiedRead, ReadFault> {
        let ctx = self.read.as_mut().expect("read context exists");
        let t0 = Instant::now();
        let result = verify_read(
            &mut ctx.registry,
            &ReadResponse {
                server: target,
                shard,
                root_height,
                covered_height: covered,
                header,
                proof,
            },
            keys,
            min_covered,
            pinned,
        );
        ctx.stats.verify_ns.record_duration(t0.elapsed());
        match result {
            Ok(verified) => {
                ctx.stats.reads += 1;
                ctx.stats.keys_read += keys.len() as u64;
                ctx.stats.staleness.record(verified.staleness);
                Ok(verified)
            }
            Err(fault) => {
                if fault.is_evidence() {
                    /// Evidence cap (a retry loop against a persistent
                    /// forger must not grow it forever).
                    const MAX_READ_EVIDENCE: usize = 512;
                    let evidence = ReadEvidence {
                        server: target,
                        shard,
                        fault: fault.clone(),
                    };
                    let mut sink = ctx.evidence.lock();
                    if sink.len() < MAX_READ_EVIDENCE && sink.last() != Some(&evidence) {
                        sink.push(evidence);
                    }
                }
                Err(fault)
            }
        }
    }

    /// One shard's read: candidate servers tried round-robin (owner
    /// first under `Fresh`), cycling until success or the op-timeout.
    fn read_shard(
        &mut self,
        shard: u32,
        keys: &[Key],
        consistency: ReadConsistency,
    ) -> Result<VerifiedRead, ClientError> {
        let n = self.partitioner.n_servers();
        let candidates: Vec<u32> = match consistency {
            // Only the owner is guaranteed fresh (a mirror could serve
            // Fresh only in the no-new-blocks race; not worth the hop).
            ReadConsistency::Fresh => vec![shard],
            _ => {
                let ctx = self.read.as_mut().expect("checked by caller");
                let start = ctx.next_target;
                ctx.next_target = (ctx.next_target + 1) % n;
                let now = Instant::now();
                ctx.no_mirror
                    .retain(|_, refused_at| now.duration_since(*refused_at) < NO_MIRROR_TTL);
                // Rotate through every server, skipping peers that
                // recently answered `NoSnapshot` for this shard; the
                // owner is always in the rotation, so a mirror-less
                // cluster degrades to straight owner reads.
                (0..n)
                    .map(|i| (start + i) % n)
                    .filter(|s| *s == shard || !ctx.no_mirror.contains_key(&(*s, shard)))
                    .collect()
            }
        };
        let deadline = Instant::now() + self.op_timeout;
        let mut last_refusal: Option<ReadRefusal> = None;
        let mut last_fault: Option<ReadFault> = None;
        loop {
            // Transient outcomes (a Fresh read racing a commit apply, a
            // repairing peer, a timeout) are worth another cycle;
            // deterministic ones (a refuted forgery, no mirror held)
            // are not — retrying would only spin out the op-timeout.
            let mut transient = false;
            for &target in &candidates {
                if Instant::now() >= deadline {
                    break;
                }
                match self.try_read_from(target, shard, keys, consistency, deadline)? {
                    ReadAttempt::Ok(verified) => return Ok(verified),
                    ReadAttempt::Refused(reason) => {
                        if matches!(reason, ReadRefusal::NoSnapshot) {
                            let ctx = self.read.as_mut().expect("checked by caller");
                            ctx.no_mirror.insert((target, shard), Instant::now());
                        } else {
                            transient = true;
                        }
                        last_refusal = Some(reason);
                    }
                    ReadAttempt::Refuted(fault) => last_fault = Some(fault),
                    ReadAttempt::TimedOut => transient = true,
                }
            }
            if !transient || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
        Err(match (last_fault, last_refusal) {
            (Some(fault), _) => ClientError::ReadRefuted(fault),
            (None, Some(reason)) => ClientError::ReadRefused(reason),
            (None, None) => ClientError::Timeout("snapshot read"),
        })
    }

    /// A single verified read against a specific server, **no**
    /// fallback — the building block of [`ClientSession::read_only`]
    /// and the direct hook tests/benches use to target mirrors or
    /// Byzantine servers. All keys must belong to one shard.
    ///
    /// # Errors
    ///
    /// Network errors, [`ClientError::ReadRefused`] on an honest
    /// refusal, [`ClientError::ReadRefuted`] when the response failed
    /// verification (evidence filed).
    pub fn read_only_from(
        &mut self,
        server: u32,
        keys: &[Key],
        consistency: ReadConsistency,
    ) -> Result<VerifiedRead, ClientError> {
        if self.read.is_none() {
            return Err(ClientError::NoReadContext);
        }
        let shard = self.partitioner.owner(&keys[0]);
        debug_assert!(
            keys.iter().all(|k| self.partitioner.owner(k) == shard),
            "read_only_from takes keys of one shard"
        );
        let deadline = Instant::now() + self.op_timeout;
        match self.try_read_from(server, shard, keys, consistency, deadline)? {
            ReadAttempt::Ok(verified) => Ok(verified),
            ReadAttempt::Refused(reason) => Err(ClientError::ReadRefused(reason)),
            ReadAttempt::Refuted(fault) => Err(ClientError::ReadRefuted(fault)),
            ReadAttempt::TimedOut => Err(ClientError::Timeout("snapshot read")),
        }
    }

    /// Sends one `SnapshotRead` and classifies the outcome. On an
    /// unknown-root response the registry is refreshed (one
    /// `RootQuery`) and the read retried once.
    fn try_read_from(
        &mut self,
        target: u32,
        shard: u32,
        keys: &[Key],
        consistency: ReadConsistency,
        deadline: Instant,
    ) -> Result<ReadAttempt, ClientError> {
        use fides_ledger::block::BlockHeader;
        use fides_store::ShardReadProof;
        let mut refreshed = false;
        loop {
            let ctx = self.read.as_mut().expect("checked by caller");
            let req = ctx.req_seq;
            ctx.req_seq += 1;
            let min_covered = consistency.min_covered(ctx.registry.known_tip());
            let at_height = match consistency {
                ReadConsistency::AtHeight(h) => Some(h),
                _ => None,
            };
            self.send_to(
                target,
                &Message::SnapshotRead {
                    req,
                    shard,
                    keys: keys.to_vec(),
                    min_covered,
                    at_height,
                },
            );
            enum Reply {
                Resp {
                    root_height: u64,
                    covered: u64,
                    header: Option<Box<BlockHeader>>,
                    proof: Box<ShardReadProof>,
                },
                Refused(ReadRefusal),
            }
            let want_from = server_node(target);
            let reply =
                self.wait_for_until("snapshot read", deadline, move |from, msg| match msg {
                    Message::SnapshotReadResp {
                        req: r,
                        shard: s,
                        root_height,
                        covered_height,
                        header,
                        proof,
                        ..
                    } if r == req && s == shard && from == want_from => Some(Reply::Resp {
                        root_height,
                        covered: covered_height,
                        header,
                        proof,
                    }),
                    Message::SnapshotReadRefused { req: r, reason }
                        if r == req && from == want_from =>
                    {
                        Some(Reply::Refused(reason))
                    }
                    _ => None,
                });
            let reply = match reply {
                Ok(reply) => reply,
                Err(ClientError::Timeout(_)) => return Ok(ReadAttempt::TimedOut),
                Err(e) => return Err(e),
            };
            let (root_height, covered, header, proof) = match reply {
                Reply::Refused(reason) => {
                    if let Some(ctx) = self.read.as_mut() {
                        ctx.stats.refusals += 1;
                    }
                    return Ok(ReadAttempt::Refused(reason));
                }
                Reply::Resp {
                    root_height,
                    covered,
                    header,
                    proof,
                } => (root_height, covered, header, proof),
            };
            match self.classify_response(
                target,
                shard,
                keys,
                min_covered,
                at_height,
                root_height,
                covered,
                header.as_deref(),
                &proof,
            ) {
                Ok(verified) => return Ok(ReadAttempt::Ok(verified)),
                Err(ReadFault::UnknownRoot { .. }) if !refreshed => {
                    // Client-side ignorance, not misbehaviour: learn the
                    // newer co-signed roots and retry once.
                    refreshed = true;
                    self.refresh_roots(target, shard, deadline)?;
                }
                Err(fault) => return Ok(ReadAttempt::Refuted(fault)),
            }
        }
    }

    /// Pulls recent co-signed headers from `target` into the registry
    /// (each header's collective signature is verified before any root
    /// is trusted; a forged one is filed as evidence).
    fn refresh_roots(
        &mut self,
        target: u32,
        shard: u32,
        deadline: Instant,
    ) -> Result<(), ClientError> {
        let from_height = self.known_tip();
        self.send_to(target, &Message::RootQuery { from: from_height });
        let want_from = server_node(target);
        let headers =
            self.wait_for_until("root announce", deadline, move |from, msg| match msg {
                Message::RootAnnounce { headers } if from == want_from => Some(headers),
                _ => None,
            })?;
        let ctx = self.read.as_mut().expect("read context exists");
        for header in &headers {
            if ctx.registry.note_header(header).is_err() {
                ctx.evidence.lock().push(ReadEvidence {
                    server: target,
                    shard,
                    fault: ReadFault::ForgedHeader,
                });
                break;
            }
        }
        Ok(())
    }
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClientSession(id={}, seq={})", self.id, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_strictly_increasing() {
        let oracle = TimestampOracle::new();
        let a = oracle.next();
        let b = oracle.next();
        assert!(b > a);
    }

    #[test]
    fn oracle_advance_to_jumps_forward_only() {
        let oracle = TimestampOracle::new();
        oracle.advance_to(100);
        assert!(oracle.next() > 100);
        oracle.advance_to(5); // no regression
        assert!(oracle.next() > 100);
    }

    #[test]
    fn outcome_predicates() {
        let ts = Timestamp::new(1, 0);
        assert!(TxnOutcome::Committed { ts, height: 0 }.committed());
        assert!(!TxnOutcome::Aborted { ts, height: 0 }.committed());
        assert!(TxnOutcome::Anomaly { ts }.is_anomaly());
    }

    #[test]
    fn client_error_display() {
        assert!(ClientError::NoSuchKey(Key::new("x"))
            .to_string()
            .contains('x'));
        assert!(!ClientError::Timeout("vote").to_string().is_empty());
    }
}
