//! Client sessions: the transaction life-cycle of Figure 5.
//!
//! Clients interact directly with the database servers (there is no
//! trusted front-end, §4.1): reads and writes go to the owning shard
//! server; termination requests go to the designated coordinator; the
//! final signed block comes back and the client verifies the collective
//! signature before accepting the outcome (§4.3.1 phase 5).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_crypto::encoding::{Decodable, Encodable};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_ledger::block::{Block, Decision, TxnRecord};
use fides_net::{Endpoint, Envelope, NodeId};
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::types::{Key, Timestamp, Value};

use crate::messages::{CommitProtocol, Message, TxnHandle};
use crate::partition::Partitioner;
use crate::server::{client_node, server_node, Directory, COORDINATOR_IDX};

/// A shared monotone counter from which clients derive commit
/// timestamps.
///
/// The paper only requires "a timestamp that supports total ordering …
/// as long as all clients use the same timestamp generating mechanism"
/// (§4.1); a shared atomic counter is the simplest such mechanism and
/// keeps end-transaction rejections (stale timestamps) out of the happy
/// path. The Lamport-style `(counter, client)` pair still totally
/// orders timestamps if clients ever race.
#[derive(Clone, Debug, Default)]
pub struct TimestampOracle(Arc<AtomicU64>);

impl TimestampOracle {
    /// Creates a fresh oracle starting above [`Timestamp::ZERO`].
    pub fn new() -> Self {
        TimestampOracle(Arc::new(AtomicU64::new(1)))
    }

    /// The next counter value (strictly increasing).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the counter to at least `floor`.
    pub fn advance_to(&self, floor: u64) {
        self.0.fetch_max(floor + 1, Ordering::Relaxed);
    }
}

/// Client-side state of one in-flight transaction.
#[derive(Debug)]
pub struct TxnCtx {
    handle: TxnHandle,
    /// Servers already sent a `Begin` (§4.1 step 1).
    begun: HashSet<u32>,
    /// Read set accumulated from read responses.
    reads: Vec<ReadEntry>,
    /// Keys read (to distinguish blind writes).
    read_keys: HashSet<Key>,
    /// Write intentions with the metadata from write acks.
    writes: Vec<WriteEntry>,
}

impl TxnCtx {
    /// The provisional transaction handle.
    pub fn handle(&self) -> TxnHandle {
        self.handle
    }

    /// Values read so far, in request order.
    pub fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }
}

/// The final, client-visible outcome of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed in the block at `height`.
    Committed {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Block height in the global log.
        height: u64,
    },
    /// The transaction (or its whole block) aborted.
    Aborted {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Height of the abort block.
        height: u64,
    },
    /// The returned block's collective signature did not verify — the
    /// client "detects an anomaly and triggers an audit" (§4.3.1).
    Anomaly {
        /// Assigned commit timestamp.
        ts: Timestamp,
    },
}

impl TxnOutcome {
    /// `true` only for a verified commit.
    pub fn committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// `true` when the client detected a protocol anomaly.
    pub fn is_anomaly(&self) -> bool {
        matches!(self, TxnOutcome::Anomaly { .. })
    }
}

/// A commit in flight on a pipelined client: everything needed to
/// retry a rejected timestamp and classify the eventual outcome.
#[derive(Debug)]
pub struct PendingCommit {
    /// The transaction's provisional handle.
    pub handle: TxnHandle,
    /// The (latest) commit timestamp assigned.
    pub ts: Timestamp,
    record: TxnRecord,
    attempts: u32,
}

/// An outcome whose collective signature has **not** been verified yet
/// — produced by [`ClientSession::drain_outcomes`], consumed in bulk by
/// [`finalize_outcomes`].
#[derive(Debug)]
pub struct UnverifiedOutcome {
    /// The transaction's handle.
    pub handle: TxnHandle,
    /// The commit timestamp the client assigned.
    pub ts: Timestamp,
    /// The signed decision block as received.
    pub block: Box<Block>,
}

/// Verifies a batch of outcomes' collective signatures with **one**
/// batched check (`cosi::verify_batch`, the random-linear-combination
/// fast path) instead of one full verification per outcome, then
/// classifies each as committed/aborted exactly like
/// [`ClientSession::commit`] — §4.3.1 phase 5 at batch cost.
///
/// Several outcomes routinely share one block (batched rounds), so the
/// signature work is deduplicated by height first. If the batch check
/// fails, each distinct block is re-verified individually and only the
/// offending outcomes degrade to [`TxnOutcome::Anomaly`].
///
/// Under the 2PC baseline blocks are unsigned; verification is skipped
/// as in the synchronous path.
pub fn finalize_outcomes(
    outcomes: Vec<UnverifiedOutcome>,
    server_pks: &[PublicKey],
    protocol: CommitProtocol,
) -> Vec<TxnOutcome> {
    use std::collections::HashMap;

    // Distinct blocks by height (identical heights carry identical
    // blocks in an honest run; an equivocating coordinator's copies
    // fail verification either way).
    let mut distinct: HashMap<u64, &Block> = HashMap::new();
    for outcome in &outcomes {
        distinct
            .entry(outcome.block.height)
            .or_insert(&outcome.block);
    }
    let verified: HashMap<u64, bool> = if protocol == CommitProtocol::TfCommit {
        let blocks: Vec<(u64, &Block)> = distinct.iter().map(|(h, b)| (*h, *b)).collect();
        let records: Vec<Vec<u8>> = blocks.iter().map(|(_, b)| b.signing_bytes()).collect();
        let items: Vec<(&[u8], fides_crypto::cosi::CollectiveSignature)> = records
            .iter()
            .map(Vec::as_slice)
            .zip(blocks.iter().map(|(_, b)| b.cosign))
            .collect();
        if fides_crypto::cosi::verify_batch(&items, server_pks) {
            blocks.iter().map(|(h, _)| (*h, true)).collect()
        } else {
            // Attribute: re-check each distinct block individually.
            blocks
                .iter()
                .zip(&records)
                .map(|((h, b), record)| (*h, b.cosign.verify(record, server_pks)))
                .collect()
        }
    } else {
        distinct.keys().map(|h| (*h, true)).collect()
    };

    outcomes
        .into_iter()
        .map(|outcome| {
            let ts = outcome.ts;
            let block = *outcome.block;
            if !verified.get(&block.height).copied().unwrap_or(false) {
                return TxnOutcome::Anomaly { ts };
            }
            let committed =
                block.decision == Decision::Commit && block.txns.iter().any(|t| t.id == ts);
            if committed {
                TxnOutcome::Committed {
                    ts,
                    height: block.height,
                }
            } else {
                TxnOutcome::Aborted {
                    ts,
                    height: block.height,
                }
            }
        })
        .collect()
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The owning server reported the key as absent.
    NoSuchKey(Key),
    /// No response arrived in time (crashed server or partition).
    Timeout(&'static str),
    /// The network shut down.
    Disconnected,
    /// The coordinator kept rejecting our timestamps.
    RetriesExhausted,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClientError::Disconnected => write!(f, "network disconnected"),
            ClientError::RetriesExhausted => write!(f, "coordinator kept rejecting timestamps"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client session bound to one endpoint.
pub struct ClientSession {
    id: u32,
    endpoint: Endpoint,
    keypair: KeyPair,
    directory: Directory,
    partitioner: Partitioner,
    server_pks: Vec<PublicKey>,
    oracle: TimestampOracle,
    protocol: CommitProtocol,
    seq: u64,
    op_timeout: Duration,
    /// Commit traffic (outcomes/rejections) that arrived while waiting
    /// for an execution-phase response — a pipelined client's earlier
    /// transactions resolving mid-read. Consumed by
    /// [`ClientSession::drain_outcomes`].
    stash: std::collections::VecDeque<Message>,
}

impl ClientSession {
    /// Assembles a session (normally via
    /// [`crate::system::FidesCluster::client`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
        oracle: TimestampOracle,
        protocol: CommitProtocol,
    ) -> Self {
        ClientSession {
            id,
            endpoint,
            keypair,
            directory,
            partitioner,
            server_pks,
            oracle,
            protocol,
            seq: 0,
            op_timeout: Duration::from_secs(10),
            stash: std::collections::VecDeque::new(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Starts a new transaction (Figure 5 step 1 happens lazily per
    /// server on first access).
    pub fn begin(&mut self) -> TxnCtx {
        self.seq += 1;
        TxnCtx {
            handle: TxnHandle {
                client: self.id,
                seq: self.seq,
            },
            begun: HashSet::new(),
            reads: Vec::new(),
            read_keys: HashSet::new(),
            writes: Vec::new(),
        }
    }

    fn send_to(&self, server: u32, msg: &Message) {
        let env = Envelope::sign(
            &self.keypair,
            client_node(self.id),
            server_node(server),
            msg.encode(),
        );
        self.endpoint.send(env);
    }

    /// Waits for a message matching `want`. Commit traffic for other
    /// in-flight transactions (outcomes, rejections) is stashed for
    /// [`ClientSession::drain_outcomes`]; anything else is dropped.
    fn wait_for<T>(
        &mut self,
        what: &'static str,
        mut want: impl FnMut(NodeId, Message) -> Option<T>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.op_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout(what));
            }
            match self.endpoint.recv_timeout(deadline - now) {
                Ok(env) => {
                    let Some(pk) = self.directory.get(&env.from) else {
                        continue;
                    };
                    if !env.verify(pk) {
                        continue;
                    }
                    let Ok(msg) = Message::decode(&env.payload) else {
                        continue;
                    };
                    match want(env.from, msg) {
                        Some(out) => return Ok(out),
                        None => {
                            // `want` consumed the message; nothing to
                            // stash — it only declines by returning
                            // None *without* taking ownership semantics
                            // we can observe, so re-decode to check for
                            // commit traffic worth keeping.
                            if let Ok(msg) = Message::decode(&env.payload) {
                                if matches!(
                                    msg,
                                    Message::Outcome { .. } | Message::EndTxnRejected { .. }
                                ) {
                                    self.stash.push_back(msg);
                                }
                            }
                        }
                    }
                }
                Err(fides_net::RecvError::Timeout) => return Err(ClientError::Timeout(what)),
                Err(fides_net::RecvError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    fn ensure_begun(&mut self, txn: &mut TxnCtx, server: u32) {
        if txn.begun.insert(server) {
            self.send_to(server, &Message::Begin { txn: txn.handle });
        }
    }

    /// Reads one item (Figure 5 steps 2–3). The observed value and
    /// timestamps join the read set.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoSuchKey`] if the owning server does not store
    /// the key; timeout/disconnect errors on network failure.
    pub fn read(&mut self, txn: &mut TxnCtx, key: &Key) -> Result<Value, ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Read {
                txn: txn.handle,
                key: key.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let entry = self.wait_for("read response", move |_, msg| match msg {
            Message::ReadResp {
                txn: t,
                key: k,
                value,
                rts,
                wts,
            } if t == handle && k == want_key => Some(Ok(ReadEntry {
                key: k,
                value,
                rts,
                wts,
            })),
            Message::ReadErr { txn: t, key: k } if t == handle && k == want_key => {
                Some(Err(ClientError::NoSuchKey(k)))
            }
            _ => None,
        })??;
        // Lamport rule: our next timestamp must exceed what we observed.
        self.oracle
            .advance_to(entry.rts.counter().max(entry.wts.counter()));
        let value = entry.value.clone();
        txn.read_keys.insert(entry.key.clone());
        txn.reads.push(entry);
        Ok(value)
    }

    /// Buffers a write at the owning server (Figure 5 steps 2–3). For a
    /// blind write (key not previously read) the acknowledgement's old
    /// value is recorded in the write set (§4.2.1).
    pub fn write(&mut self, txn: &mut TxnCtx, key: &Key, value: Value) -> Result<(), ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Write {
                txn: txn.handle,
                key: key.clone(),
                value: value.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let old = self.wait_for("write ack", move |_, msg| match msg {
            Message::WriteAck {
                txn: t,
                key: k,
                old,
            } if t == handle && k == want_key => Some(old),
            _ => None,
        })?;

        let was_read = txn.read_keys.contains(key);
        let (old_value, rts, wts) = match (&old, was_read) {
            // Blind write: remember the pre-image (§4.2.1).
            (Some((v, r, w)), false) => (Some(v.clone()), *r, *w),
            // Read-then-write: the read entry already holds the pre-image.
            (Some((_, r, w)), true) => (None, *r, *w),
            (None, _) => (None, Timestamp::ZERO, Timestamp::ZERO),
        };
        if let Some((_, r, w)) = &old {
            self.oracle.advance_to(r.counter().max(w.counter()));
        }
        txn.writes.push(WriteEntry {
            key: key.clone(),
            new_value: value,
            old_value,
            rts,
            wts,
        });
        Ok(())
    }

    /// Terminates the transaction (Figure 5 steps 4–8): assigns the
    /// commit timestamp, sends the end-transaction request to the
    /// coordinator, waits for the signed block, verifies the collective
    /// signature and extracts the decision.
    ///
    /// # Errors
    ///
    /// Network errors; [`ClientError::RetriesExhausted`] if the
    /// coordinator keeps rejecting our timestamps.
    pub fn commit(&mut self, txn: TxnCtx) -> Result<TxnOutcome, ClientError> {
        let handle = txn.handle;
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 16 {
                return Err(ClientError::RetriesExhausted);
            }
            let ts = Timestamp::new(self.oracle.next(), self.id);
            let record = TxnRecord {
                id: ts,
                read_set: txn.reads.clone(),
                write_set: txn.writes.clone(),
            };
            self.send_to(COORDINATOR_IDX, &Message::EndTxn { handle, record });

            enum Reply {
                Outcome(Box<Block>),
                Rejected(Timestamp),
            }
            let reply = self.wait_for("transaction outcome", move |_, msg| match msg {
                Message::Outcome { handles, block } if handles.contains(&handle) => {
                    Some(Reply::Outcome(Box::new(block)))
                }
                Message::EndTxnRejected { handle: h, hint } if h == handle => {
                    Some(Reply::Rejected(hint))
                }
                _ => None,
            })?;

            match reply {
                Reply::Rejected(hint) => {
                    self.oracle.advance_to(hint.counter());
                    continue;
                }
                Reply::Outcome(block) => {
                    let block = *block;
                    // §4.3.1 phase 5: "The client, with the public keys of
                    // all the servers, verifies the co-sign before
                    // accepting the decision."
                    if self.protocol == CommitProtocol::TfCommit
                        && !block
                            .cosign
                            .verify(&block.signing_bytes(), &self.server_pks)
                    {
                        return Ok(TxnOutcome::Anomaly { ts });
                    }
                    self.oracle
                        .advance_to(block.max_txn_ts().map_or(0, |t| t.counter()));
                    let height = block.height;
                    let committed =
                        block.decision == Decision::Commit && block.txns.iter().any(|t| t.id == ts);
                    return Ok(if committed {
                        TxnOutcome::Committed { ts, height }
                    } else {
                        TxnOutcome::Aborted { ts, height }
                    });
                }
            }
        }
    }

    /// Receives until at least one authenticated message is available,
    /// draining the transport in bursts whose signatures are verified
    /// with **one** batched check
    /// ([`fides_net::Endpoint::recv_verified_burst`]).
    fn recv_auth_burst(&mut self, deadline: Instant) -> Result<Vec<Message>, ClientError> {
        const MAX_BURST: usize = 32;
        loop {
            let burst =
                match self
                    .endpoint
                    .recv_verified_burst(deadline, &self.directory, MAX_BURST)
                {
                    Ok(burst) => burst,
                    Err(fides_net::RecvError::Timeout) => {
                        return Err(ClientError::Timeout("batched responses"))
                    }
                    Err(fides_net::RecvError::Disconnected) => {
                        return Err(ClientError::Disconnected)
                    }
                };
            let messages: Vec<Message> = burst
                .iter()
                .filter_map(|env| Message::decode(&env.payload).ok())
                .collect();
            if !messages.is_empty() {
                return Ok(messages);
            }
        }
    }

    /// Reads several **distinct** keys in one shot: the keys are
    /// grouped by owning server and each group goes out as **one**
    /// signed [`Message::ReadMany`]; the per-server responses come back
    /// with burst batch-verified signatures. One round of waiting and
    /// roughly one signature per *server* instead of per *key* — the
    /// execution layer's answer to block batching. Values return in
    /// input order; all entries join the read set.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoSuchKey`] if any key is absent; network errors.
    pub fn read_all(&mut self, txn: &mut TxnCtx, keys: &[Key]) -> Result<Vec<Value>, ClientError> {
        use std::collections::HashMap;
        // No explicit `Begin` round: reads need no server-side state and
        // the server creates write buffers lazily — Figure 5 step 1 is
        // implicit in the first operation, saving one signed message per
        // involved server per transaction.
        let mut per_server: HashMap<u32, Vec<Key>> = HashMap::new();
        for key in keys {
            per_server
                .entry(self.partitioner.owner(key))
                .or_default()
                .push(key.clone());
        }
        for (server, group) in per_server {
            txn.begun.insert(server);
            self.send_to(
                server,
                &Message::ReadMany {
                    txn: txn.handle,
                    keys: group,
                },
            );
        }
        let wanted: HashSet<&Key> = keys.iter().collect();
        let mut entries: HashMap<Key, ReadEntry> = HashMap::new();
        let deadline = Instant::now() + self.op_timeout;
        while entries.len() < wanted.len() {
            for msg in self.recv_auth_burst(deadline)? {
                match msg {
                    Message::ReadManyResp { txn: t, items } if t == txn.handle => {
                        for (key, state) in items {
                            if !wanted.contains(&key) {
                                continue;
                            }
                            let Some((value, rts, wts)) = state else {
                                return Err(ClientError::NoSuchKey(key));
                            };
                            entries.entry(key.clone()).or_insert(ReadEntry {
                                key,
                                value,
                                rts,
                                wts,
                            });
                        }
                    }
                    msg @ (Message::Outcome { .. } | Message::EndTxnRejected { .. }) => {
                        self.stash.push_back(msg);
                    }
                    _ => {}
                }
            }
        }
        let mut values = Vec::with_capacity(keys.len());
        for key in keys {
            // `get` rather than `remove`: a duplicate key in the input
            // yields one read request but two read-set entries, exactly
            // like two sequential `read` calls would.
            let entry = entries.get(key).cloned().expect("collected above");
            self.oracle
                .advance_to(entry.rts.counter().max(entry.wts.counter()));
            values.push(entry.value.clone());
            txn.read_keys.insert(entry.key.clone());
            txn.reads.push(entry);
        }
        Ok(values)
    }

    /// Buffers writes to several **distinct** keys in one shot — the
    /// batched counterpart of [`ClientSession::write`].
    ///
    /// Writes to keys **already read in this transaction** are buffered
    /// purely client-side: the owner's write-ack round trip would only
    /// repeat metadata the read already returned (commit-time OCC
    /// validates against the owner's live state either way, and the
    /// block carries the full write set). Blind writes still consult
    /// the owner for the pre-image (§4.2.1); their acks are collected
    /// with burst batch-verified signatures.
    ///
    /// # Errors
    ///
    /// Network errors (timeout, disconnect).
    pub fn write_all(
        &mut self,
        txn: &mut TxnCtx,
        writes: &[(Key, Value)],
    ) -> Result<(), ClientError> {
        use std::collections::HashMap;
        let mut blind: Vec<&(Key, Value)> = Vec::new();
        for entry @ (key, value) in writes {
            if txn.read_keys.contains(key) {
                // Read-then-write: the read entry already pinned the
                // version this write supersedes.
                let (rts, wts) = txn
                    .reads
                    .iter()
                    .find(|r| &r.key == key)
                    .map(|r| (r.rts, r.wts))
                    .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
                txn.writes.push(WriteEntry {
                    key: key.clone(),
                    new_value: value.clone(),
                    old_value: None,
                    rts,
                    wts,
                });
            } else {
                blind.push(entry);
            }
        }
        if blind.is_empty() {
            return Ok(());
        }
        for (key, value) in &blind {
            let server = self.partitioner.owner(key);
            txn.begun.insert(server);
            self.send_to(
                server,
                &Message::Write {
                    txn: txn.handle,
                    key: key.clone(),
                    value: value.clone(),
                },
            );
        }
        let wanted: HashSet<&Key> = blind.iter().map(|(k, _)| k).collect();
        type OldState = Option<(Value, Timestamp, Timestamp)>;
        let mut acks: HashMap<Key, OldState> = HashMap::new();
        let deadline = Instant::now() + self.op_timeout;
        while acks.len() < wanted.len() {
            for msg in self.recv_auth_burst(deadline)? {
                match msg {
                    Message::WriteAck { txn: t, key, old }
                        if t == txn.handle && wanted.contains(&key) =>
                    {
                        acks.entry(key).or_insert(old);
                    }
                    msg @ (Message::Outcome { .. } | Message::EndTxnRejected { .. }) => {
                        self.stash.push_back(msg);
                    }
                    _ => {}
                }
            }
        }
        for (key, value) in &blind {
            // `get` rather than `remove`: duplicate blind-write keys
            // share one ack but still produce one write entry each.
            let old = acks.get(key).cloned().expect("collected above");
            let (old_value, rts, wts) = match &old {
                Some((v, r, w)) => (Some(v.clone()), *r, *w),
                None => (None, Timestamp::ZERO, Timestamp::ZERO),
            };
            if let Some((_, r, w)) = &old {
                self.oracle.advance_to(r.counter().max(w.counter()));
            }
            txn.writes.push(WriteEntry {
                key: key.clone(),
                new_value: value.clone(),
                old_value,
                rts,
                wts,
            });
        }
        Ok(())
    }

    /// Starts terminating `txn` **without blocking**: the
    /// end-transaction request is sent and a [`PendingCommit`] records
    /// what is needed to retry and to classify the outcome. Combine
    /// with [`ClientSession::drain_outcomes`] to keep several
    /// transactions in flight, then [`finalize_outcomes`] to verify all
    /// their collective signatures **in one batch** — the client-side
    /// ride on `verify_batch` instead of one full Schnorr verification
    /// per outcome.
    pub fn commit_async(&mut self, txn: TxnCtx) -> PendingCommit {
        let ts = Timestamp::new(self.oracle.next(), self.id);
        let record = TxnRecord {
            id: ts,
            read_set: txn.reads.clone(),
            write_set: txn.writes.clone(),
        };
        self.send_to(
            COORDINATOR_IDX,
            &Message::EndTxn {
                handle: txn.handle,
                record: record.clone(),
            },
        );
        PendingCommit {
            handle: txn.handle,
            ts,
            record,
            attempts: 1,
        }
    }

    /// Services the in-flight commits of a pipelined client: receives
    /// until `deadline` (or until every pending commit resolved),
    /// retrying rejected timestamps, and returns the **unverified**
    /// outcomes that arrived. Resolved entries are removed from
    /// `pending`.
    ///
    /// The returned outcomes' collective signatures have *not* been
    /// checked yet — pass them (in any quantity, across calls) to
    /// [`finalize_outcomes`], which batch-verifies all of them at once.
    pub fn drain_outcomes(
        &mut self,
        pending: &mut Vec<PendingCommit>,
        deadline: Instant,
    ) -> Vec<UnverifiedOutcome> {
        let mut resolved = Vec::new();
        let mut queue: Vec<Message> = Vec::new();
        while !pending.is_empty() {
            // Commit traffic stashed during execution-phase waits first,
            // then bursts off the wire (signatures batch-verified —
            // a block's outcomes land together after the covering
            // fsync, so bursts are the common case).
            let msg = if let Some(msg) = self.stash.pop_front() {
                msg
            } else if let Some(msg) = queue.pop() {
                msg
            } else {
                if Instant::now() >= deadline {
                    break;
                }
                match self.recv_auth_burst(deadline) {
                    Ok(mut messages) => {
                        messages.reverse(); // pop() restores arrival order
                        queue = messages;
                        continue;
                    }
                    Err(_) => break,
                }
            };
            match msg {
                Message::Outcome { handles, block } => {
                    self.oracle
                        .advance_to(block.max_txn_ts().map_or(0, |t| t.counter()));
                    let block = Box::new(block);
                    for handle in handles {
                        if let Some(at) = pending.iter().position(|p| p.handle == handle) {
                            let commit = pending.swap_remove(at);
                            resolved.push(UnverifiedOutcome {
                                handle,
                                ts: commit.ts,
                                block: block.clone(),
                            });
                        }
                    }
                }
                Message::EndTxnRejected { handle, hint } => {
                    if let Some(commit) = pending.iter_mut().find(|p| p.handle == handle) {
                        self.oracle.advance_to(hint.counter());
                        commit.attempts += 1;
                        if commit.attempts > 16 {
                            // Give up: the commit is dropped from
                            // `pending` and produces **no** outcome —
                            // callers account for it as the difference
                            // between submissions and finalized
                            // outcomes (mirrors the synchronous path's
                            // `RetriesExhausted`).
                            let at = pending
                                .iter()
                                .position(|p| p.handle == handle)
                                .expect("found above");
                            let _ = pending.swap_remove(at);
                            continue;
                        }
                        let ts = Timestamp::new(self.oracle.next(), self.id);
                        commit.ts = ts;
                        commit.record.id = ts;
                        let msg = Message::EndTxn {
                            handle,
                            record: commit.record.clone(),
                        };
                        self.send_to(COORDINATOR_IDX, &msg);
                    }
                }
                _ => {}
            }
        }
        resolved
    }

    /// Convenience: a read-modify-write transaction over `keys`, adding
    /// `delta` to each numeric value — the benchmark's 5-operation
    /// multi-record transaction shape (§6).
    pub fn run_rmw(&mut self, keys: &[Key], delta: i64) -> Result<TxnOutcome, ClientError> {
        let mut txn = self.begin();
        let mut staged = Vec::with_capacity(keys.len());
        for key in keys {
            let value = self.read(&mut txn, key)?;
            let next = Value::from_i64(value.as_i64().unwrap_or(0) + delta);
            staged.push((key.clone(), next));
        }
        for (key, next) in staged {
            self.write(&mut txn, &key, next)?;
        }
        self.commit(txn)
    }

    /// [`ClientSession::run_rmw`] on the batched execution path: all
    /// reads go out together (burst-verified responses), read-then-write
    /// writes buffer client-side, and the outcome is verified
    /// synchronously — the closed-loop shape with batch-priced crypto.
    pub fn run_rmw_batched(&mut self, keys: &[Key], delta: i64) -> Result<TxnOutcome, ClientError> {
        let mut txn = self.begin();
        let values = self.read_all(&mut txn, keys)?;
        let writes: Vec<(Key, Value)> = keys
            .iter()
            .zip(values)
            .map(|(key, value)| {
                (
                    key.clone(),
                    Value::from_i64(value.as_i64().unwrap_or(0) + delta),
                )
            })
            .collect();
        self.write_all(&mut txn, &writes)?;
        self.commit(txn)
    }

    /// Overrides the per-operation timeout (tests exercising crash
    /// paths use short values).
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClientSession(id={}, seq={})", self.id, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_strictly_increasing() {
        let oracle = TimestampOracle::new();
        let a = oracle.next();
        let b = oracle.next();
        assert!(b > a);
    }

    #[test]
    fn oracle_advance_to_jumps_forward_only() {
        let oracle = TimestampOracle::new();
        oracle.advance_to(100);
        assert!(oracle.next() > 100);
        oracle.advance_to(5); // no regression
        assert!(oracle.next() > 100);
    }

    #[test]
    fn outcome_predicates() {
        let ts = Timestamp::new(1, 0);
        assert!(TxnOutcome::Committed { ts, height: 0 }.committed());
        assert!(!TxnOutcome::Aborted { ts, height: 0 }.committed());
        assert!(TxnOutcome::Anomaly { ts }.is_anomaly());
    }

    #[test]
    fn client_error_display() {
        assert!(ClientError::NoSuchKey(Key::new("x"))
            .to_string()
            .contains('x'));
        assert!(!ClientError::Timeout("vote").to_string().is_empty());
    }
}
