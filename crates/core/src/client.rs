//! Client sessions: the transaction life-cycle of Figure 5.
//!
//! Clients interact directly with the database servers (there is no
//! trusted front-end, §4.1): reads and writes go to the owning shard
//! server; termination requests go to the designated coordinator; the
//! final signed block comes back and the client verifies the collective
//! signature before accepting the outcome (§4.3.1 phase 5).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_crypto::encoding::{Decodable, Encodable};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_ledger::block::{Block, Decision, TxnRecord};
use fides_net::{Endpoint, Envelope, NodeId};
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::types::{Key, Timestamp, Value};

use crate::messages::{CommitProtocol, Message, TxnHandle};
use crate::partition::Partitioner;
use crate::server::{client_node, server_node, Directory, COORDINATOR_IDX};

/// A shared monotone counter from which clients derive commit
/// timestamps.
///
/// The paper only requires "a timestamp that supports total ordering …
/// as long as all clients use the same timestamp generating mechanism"
/// (§4.1); a shared atomic counter is the simplest such mechanism and
/// keeps end-transaction rejections (stale timestamps) out of the happy
/// path. The Lamport-style `(counter, client)` pair still totally
/// orders timestamps if clients ever race.
#[derive(Clone, Debug, Default)]
pub struct TimestampOracle(Arc<AtomicU64>);

impl TimestampOracle {
    /// Creates a fresh oracle starting above [`Timestamp::ZERO`].
    pub fn new() -> Self {
        TimestampOracle(Arc::new(AtomicU64::new(1)))
    }

    /// The next counter value (strictly increasing).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the counter to at least `floor`.
    pub fn advance_to(&self, floor: u64) {
        self.0.fetch_max(floor + 1, Ordering::Relaxed);
    }
}

/// Client-side state of one in-flight transaction.
#[derive(Debug)]
pub struct TxnCtx {
    handle: TxnHandle,
    /// Servers already sent a `Begin` (§4.1 step 1).
    begun: HashSet<u32>,
    /// Read set accumulated from read responses.
    reads: Vec<ReadEntry>,
    /// Keys read (to distinguish blind writes).
    read_keys: HashSet<Key>,
    /// Write intentions with the metadata from write acks.
    writes: Vec<WriteEntry>,
}

impl TxnCtx {
    /// The provisional transaction handle.
    pub fn handle(&self) -> TxnHandle {
        self.handle
    }

    /// Values read so far, in request order.
    pub fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }
}

/// The final, client-visible outcome of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed in the block at `height`.
    Committed {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Block height in the global log.
        height: u64,
    },
    /// The transaction (or its whole block) aborted.
    Aborted {
        /// Assigned commit timestamp.
        ts: Timestamp,
        /// Height of the abort block.
        height: u64,
    },
    /// The returned block's collective signature did not verify — the
    /// client "detects an anomaly and triggers an audit" (§4.3.1).
    Anomaly {
        /// Assigned commit timestamp.
        ts: Timestamp,
    },
}

impl TxnOutcome {
    /// `true` only for a verified commit.
    pub fn committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// `true` when the client detected a protocol anomaly.
    pub fn is_anomaly(&self) -> bool {
        matches!(self, TxnOutcome::Anomaly { .. })
    }
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The owning server reported the key as absent.
    NoSuchKey(Key),
    /// No response arrived in time (crashed server or partition).
    Timeout(&'static str),
    /// The network shut down.
    Disconnected,
    /// The coordinator kept rejecting our timestamps.
    RetriesExhausted,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClientError::Disconnected => write!(f, "network disconnected"),
            ClientError::RetriesExhausted => write!(f, "coordinator kept rejecting timestamps"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client session bound to one endpoint.
pub struct ClientSession {
    id: u32,
    endpoint: Endpoint,
    keypair: KeyPair,
    directory: Directory,
    partitioner: Partitioner,
    server_pks: Vec<PublicKey>,
    oracle: TimestampOracle,
    protocol: CommitProtocol,
    seq: u64,
    op_timeout: Duration,
}

impl ClientSession {
    /// Assembles a session (normally via
    /// [`crate::system::FidesCluster::client`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
        oracle: TimestampOracle,
        protocol: CommitProtocol,
    ) -> Self {
        ClientSession {
            id,
            endpoint,
            keypair,
            directory,
            partitioner,
            server_pks,
            oracle,
            protocol,
            seq: 0,
            op_timeout: Duration::from_secs(10),
        }
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Starts a new transaction (Figure 5 step 1 happens lazily per
    /// server on first access).
    pub fn begin(&mut self) -> TxnCtx {
        self.seq += 1;
        TxnCtx {
            handle: TxnHandle {
                client: self.id,
                seq: self.seq,
            },
            begun: HashSet::new(),
            reads: Vec::new(),
            read_keys: HashSet::new(),
            writes: Vec::new(),
        }
    }

    fn send_to(&self, server: u32, msg: &Message) {
        let env = Envelope::sign(
            &self.keypair,
            client_node(self.id),
            server_node(server),
            msg.encode(),
        );
        self.endpoint.send(env);
    }

    /// Waits for a message matching `want`; other traffic is dropped
    /// (clients run one transaction at a time).
    fn wait_for<T>(
        &self,
        what: &'static str,
        mut want: impl FnMut(NodeId, Message) -> Option<T>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.op_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout(what));
            }
            match self.endpoint.recv_timeout(deadline - now) {
                Ok(env) => {
                    let Some(pk) = self.directory.get(&env.from) else {
                        continue;
                    };
                    if !env.verify(pk) {
                        continue;
                    }
                    let Ok(msg) = Message::decode(&env.payload) else {
                        continue;
                    };
                    if let Some(out) = want(env.from, msg) {
                        return Ok(out);
                    }
                }
                Err(fides_net::RecvError::Timeout) => return Err(ClientError::Timeout(what)),
                Err(fides_net::RecvError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    fn ensure_begun(&mut self, txn: &mut TxnCtx, server: u32) {
        if txn.begun.insert(server) {
            self.send_to(server, &Message::Begin { txn: txn.handle });
        }
    }

    /// Reads one item (Figure 5 steps 2–3). The observed value and
    /// timestamps join the read set.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoSuchKey`] if the owning server does not store
    /// the key; timeout/disconnect errors on network failure.
    pub fn read(&mut self, txn: &mut TxnCtx, key: &Key) -> Result<Value, ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Read {
                txn: txn.handle,
                key: key.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let entry = self.wait_for("read response", move |_, msg| match msg {
            Message::ReadResp {
                txn: t,
                key: k,
                value,
                rts,
                wts,
            } if t == handle && k == want_key => Some(Ok(ReadEntry {
                key: k,
                value,
                rts,
                wts,
            })),
            Message::ReadErr { txn: t, key: k } if t == handle && k == want_key => {
                Some(Err(ClientError::NoSuchKey(k)))
            }
            _ => None,
        })??;
        // Lamport rule: our next timestamp must exceed what we observed.
        self.oracle
            .advance_to(entry.rts.counter().max(entry.wts.counter()));
        let value = entry.value.clone();
        txn.read_keys.insert(entry.key.clone());
        txn.reads.push(entry);
        Ok(value)
    }

    /// Buffers a write at the owning server (Figure 5 steps 2–3). For a
    /// blind write (key not previously read) the acknowledgement's old
    /// value is recorded in the write set (§4.2.1).
    pub fn write(&mut self, txn: &mut TxnCtx, key: &Key, value: Value) -> Result<(), ClientError> {
        let server = self.partitioner.owner(key);
        self.ensure_begun(txn, server);
        self.send_to(
            server,
            &Message::Write {
                txn: txn.handle,
                key: key.clone(),
                value: value.clone(),
            },
        );
        let handle = txn.handle;
        let want_key = key.clone();
        let old = self.wait_for("write ack", move |_, msg| match msg {
            Message::WriteAck {
                txn: t,
                key: k,
                old,
            } if t == handle && k == want_key => Some(old),
            _ => None,
        })?;

        let was_read = txn.read_keys.contains(key);
        let (old_value, rts, wts) = match (&old, was_read) {
            // Blind write: remember the pre-image (§4.2.1).
            (Some((v, r, w)), false) => (Some(v.clone()), *r, *w),
            // Read-then-write: the read entry already holds the pre-image.
            (Some((_, r, w)), true) => (None, *r, *w),
            (None, _) => (None, Timestamp::ZERO, Timestamp::ZERO),
        };
        if let Some((_, r, w)) = &old {
            self.oracle.advance_to(r.counter().max(w.counter()));
        }
        txn.writes.push(WriteEntry {
            key: key.clone(),
            new_value: value,
            old_value,
            rts,
            wts,
        });
        Ok(())
    }

    /// Terminates the transaction (Figure 5 steps 4–8): assigns the
    /// commit timestamp, sends the end-transaction request to the
    /// coordinator, waits for the signed block, verifies the collective
    /// signature and extracts the decision.
    ///
    /// # Errors
    ///
    /// Network errors; [`ClientError::RetriesExhausted`] if the
    /// coordinator keeps rejecting our timestamps.
    pub fn commit(&mut self, txn: TxnCtx) -> Result<TxnOutcome, ClientError> {
        let handle = txn.handle;
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 16 {
                return Err(ClientError::RetriesExhausted);
            }
            let ts = Timestamp::new(self.oracle.next(), self.id);
            let record = TxnRecord {
                id: ts,
                read_set: txn.reads.clone(),
                write_set: txn.writes.clone(),
            };
            self.send_to(COORDINATOR_IDX, &Message::EndTxn { handle, record });

            enum Reply {
                Outcome(Box<Block>),
                Rejected(Timestamp),
            }
            let reply = self.wait_for("transaction outcome", move |_, msg| match msg {
                Message::Outcome { handle: h, block } if h == handle => {
                    Some(Reply::Outcome(Box::new(block)))
                }
                Message::EndTxnRejected { handle: h, hint } if h == handle => {
                    Some(Reply::Rejected(hint))
                }
                _ => None,
            })?;

            match reply {
                Reply::Rejected(hint) => {
                    self.oracle.advance_to(hint.counter());
                    continue;
                }
                Reply::Outcome(block) => {
                    let block = *block;
                    // §4.3.1 phase 5: "The client, with the public keys of
                    // all the servers, verifies the co-sign before
                    // accepting the decision."
                    if self.protocol == CommitProtocol::TfCommit
                        && !block
                            .cosign
                            .verify(&block.signing_bytes(), &self.server_pks)
                    {
                        return Ok(TxnOutcome::Anomaly { ts });
                    }
                    self.oracle
                        .advance_to(block.max_txn_ts().map_or(0, |t| t.counter()));
                    let height = block.height;
                    let committed =
                        block.decision == Decision::Commit && block.txns.iter().any(|t| t.id == ts);
                    return Ok(if committed {
                        TxnOutcome::Committed { ts, height }
                    } else {
                        TxnOutcome::Aborted { ts, height }
                    });
                }
            }
        }
    }

    /// Convenience: a read-modify-write transaction over `keys`, adding
    /// `delta` to each numeric value — the benchmark's 5-operation
    /// multi-record transaction shape (§6).
    pub fn run_rmw(&mut self, keys: &[Key], delta: i64) -> Result<TxnOutcome, ClientError> {
        let mut txn = self.begin();
        let mut staged = Vec::with_capacity(keys.len());
        for key in keys {
            let value = self.read(&mut txn, key)?;
            let next = Value::from_i64(value.as_i64().unwrap_or(0) + delta);
            staged.push((key.clone(), next));
        }
        for (key, next) in staged {
            self.write(&mut txn, &key, next)?;
        }
        self.commit(txn)
    }

    /// Overrides the per-operation timeout (tests exercising crash
    /// paths use short values).
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClientSession(id={}, seq={})", self.id, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_strictly_increasing() {
        let oracle = TimestampOracle::new();
        let a = oracle.next();
        let b = oracle.next();
        assert!(b > a);
    }

    #[test]
    fn oracle_advance_to_jumps_forward_only() {
        let oracle = TimestampOracle::new();
        oracle.advance_to(100);
        assert!(oracle.next() > 100);
        oracle.advance_to(5); // no regression
        assert!(oracle.next() > 100);
    }

    #[test]
    fn outcome_predicates() {
        let ts = Timestamp::new(1, 0);
        assert!(TxnOutcome::Committed { ts, height: 0 }.committed());
        assert!(!TxnOutcome::Aborted { ts, height: 0 }.committed());
        assert!(TxnOutcome::Anomaly { ts }.is_anomaly());
    }

    #[test]
    fn client_error_display() {
        assert!(ClientError::NoSuchKey(Key::new("x"))
            .to_string()
            .contains('x'));
        assert!(!ClientError::Timeout("vote").to_string().is_empty());
    }
}
