//! Per-server observability bundle: the metric handles a Fides server
//! records into on its hot paths.
//!
//! [`ServerTelemetry`] pre-resolves every counter/gauge/histogram the
//! server touches (commit-round stage timers, durability pipeline
//! gauges, read-plane counters, repair-plane counters) so the commit
//! path never takes the registry lock — recording is a single relaxed
//! atomic op per metric. The registry itself is only consulted when a
//! [`MetricsSnapshot`] is taken.
//!
//! Metric names follow `plane.component.metric` (see
//! `docs/telemetry.md` for the full taxonomy):
//!
//! * `commit.*` — coordinator/cohort round accounting and the six
//!   per-stage latency histograms ([`Stage`]),
//! * `durability.*` — group-commit pipeline depth, fsync latency and
//!   batch sizes,
//! * `read.*` — verified-read serving and refusals,
//! * `repair.*` — anti-entropy transfers: phases, bytes, retargets.

use std::sync::Arc;

use fides_durability::PipelineMetrics;
use fides_telemetry::{
    Counter, EventLog, Histogram, MetricsSnapshot, Registry, SpanSink, StageTimers, StallLog,
};

/// How many rare structured events each server retains (repair
/// transitions, refusals, Byzantine evidence, timeouts). Old events are
/// overwritten ring-buffer style; `FIDES_LOG` additionally mirrors them
/// to stderr as they happen.
const EVENT_CAPACITY: usize = 256;

/// How many finished spans each node retains (fides-trace). Sized for
/// the sampled tail of a bench run: a traced round records ~10 spans
/// per participating server, so 4096 keeps the last ~400 traced rounds
/// per node.
pub(crate) const SPAN_CAPACITY: usize = 4096;

/// Pre-resolved metric handles for one server. Cheap to clone (all
/// `Arc`s); every handle stays registered in [`Self::registry`] so
/// `snapshot()` sees all of them.
#[derive(Clone, Debug)]
pub struct ServerTelemetry {
    /// The backing registry — the source of [`MetricsSnapshot`]s.
    pub registry: Arc<Registry>,
    /// Structured event ring (repair transitions, refusals, timeouts).
    pub events: Arc<EventLog>,
    /// Finished causal spans (fides-trace), tagged with this server's
    /// index — what [`crate::FidesCluster::dump_traces`] collects.
    pub spans: Arc<SpanSink>,
    /// Liveness stalls + flight-recorder dumps from the round-progress
    /// watchdog — the trigger substrate for a future view change.
    pub stall_log: Arc<StallLog>,
    /// Per-stage commit-round latency histograms.
    pub stages: StageTimers,
    /// Commit rounds driven to completion (coordinator).
    pub rounds: Arc<Counter>,
    /// Rounds this server led as the (possibly rotating) commit leader —
    /// under rotation every server's count grows; the differential
    /// tests assert leadership actually spread.
    pub rounds_led: Arc<Counter>,
    /// Rounds currently open from this server's point of view: votes
    /// cast (CoSi witness live) whose decision has not yet applied. The
    /// high watermark > 1 is the signature of overlapped rounds under
    /// rotating leadership.
    pub inflight_rounds: Arc<fides_telemetry::Gauge>,
    /// Rounds that hit a vote/response collection timeout.
    pub round_timeouts: Arc<Counter>,
    /// Liveness stalls declared by the round-progress watchdog.
    pub stalls: Arc<Counter>,
    /// Group-commit fsync latency (recorded by the writer thread).
    pub fsync_ns: Arc<Histogram>,
    /// Blocks covered per group-commit fsync.
    pub batch_blocks: Arc<Histogram>,
    /// Pipeline queue depth (submitted, not yet durable).
    pub queue_depth: Arc<fides_telemetry::Gauge>,
    /// Snapshot reads served from the server's own shard.
    pub reads_owner: Arc<Counter>,
    /// Snapshot reads served from a mirrored peer checkpoint.
    pub reads_mirror: Arc<Counter>,
    /// Snapshot reads refused (repairing, uncovered height, …).
    pub read_refusals: Arc<Counter>,
    /// Repair tasks started (gap detected).
    pub repair_started: Arc<Counter>,
    /// Repair tasks completed (verified state installed).
    pub repair_completed: Arc<Counter>,
    /// Repair source retargets (peer stopped serving / refuted).
    pub repair_retargets: Arc<Counter>,
    /// Blocks fetched over the repair plane.
    pub repair_blocks: Arc<Counter>,
    /// Bytes of encoded blocks/checkpoints fetched over repair.
    pub repair_bytes: Arc<Counter>,
    /// Latency of installing a verified transfer (ns).
    pub repair_install_ns: Arc<Histogram>,
    /// End-to-end repair durations, gap detection → installed (ns).
    pub repair_duration_ns: Arc<Histogram>,
}

impl ServerTelemetry {
    /// `tag` namespaces this node's span ids (the server index; clients
    /// use [`fides_telemetry::trace::CLIENT_TAG_BASE`]` + id`).
    pub fn new(tag: u64) -> Self {
        let registry = Arc::new(Registry::new());
        let stages = StageTimers::new(&registry);
        ServerTelemetry {
            events: Arc::new(EventLog::new(EVENT_CAPACITY)),
            spans: Arc::new(SpanSink::new(tag, SPAN_CAPACITY)),
            stall_log: Arc::new(StallLog::new()),
            stages,
            rounds: registry.counter("commit.rounds"),
            rounds_led: registry.counter("commit.rounds_led"),
            inflight_rounds: registry.gauge("commit.inflight_rounds"),
            round_timeouts: registry.counter("commit.round.timeouts"),
            stalls: registry.counter("watchdog.stalls"),
            fsync_ns: registry.histogram("durability.fsync_ns"),
            batch_blocks: registry.histogram("durability.batch_blocks"),
            queue_depth: registry.gauge("durability.queue_depth"),
            reads_owner: registry.counter("read.serve.owner"),
            reads_mirror: registry.counter("read.serve.mirror"),
            read_refusals: registry.counter("read.refused"),
            repair_started: registry.counter("repair.started"),
            repair_completed: registry.counter("repair.completed"),
            repair_retargets: registry.counter("repair.retargets"),
            repair_blocks: registry.counter("repair.blocks_fetched"),
            repair_bytes: registry.counter("repair.bytes"),
            repair_install_ns: registry.histogram("repair.install_ns"),
            repair_duration_ns: registry.histogram("repair.duration_ns"),
            registry,
        }
    }

    /// A point-in-time snapshot of every metric this server records.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The handles the durability pipeline's writer thread records
    /// into (attached via [`fides_durability::CommitPipeline::set_metrics`]).
    pub fn pipeline_metrics(&self) -> PipelineMetrics {
        PipelineMetrics {
            fsync_ns: Arc::clone(&self.fsync_ns),
            batch_blocks: Arc::clone(&self.batch_blocks),
            queue_depth: Arc::clone(&self.queue_depth),
            spans: Some(Arc::clone(&self.spans)),
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        Self::new(0)
    }
}
