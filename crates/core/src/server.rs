//! The Fides database server (paper §3.1 Figure 3, §4).
//!
//! Each server is one thread owning the four components of Figure 3:
//! an **execution layer** (transactional reads and buffered writes), a
//! **commitment layer** (TFCommit cohort and, on the designated server,
//! the TFCommit coordinator; or their 2PC counterparts), a **datastore**
//! (a Merkle-authenticated multi-versioned shard) and the
//! **tamper-proof log**.
//!
//! All state lives behind an `Arc<Mutex<ServerState>>` so that the
//! auditor can gather snapshots ("the auditor gathers the tamper-proof
//! logs from all the servers", §3.3) and tests can inject faults.
//!
//! # Persistence
//!
//! A server may carry a [`Durability`] handle (attached at
//! construction, see [`crate::recovery`]). Every terminated block —
//! commit *and* abort — is then appended to the durable log **before**
//! the datastore applies its writes (write-ahead), and made stable with
//! one group-commit `fsync` per block; every `snapshot_interval` blocks
//! the shard is checkpointed so restarts replay only a log suffix. On
//! restart, [`crate::recovery::recover_server`] re-validates the whole
//! persisted chain (hash links + batched collective-signature
//! verification) and cross-checks the replayed shard against the
//! co-signed Merkle roots before the server is allowed to serve
//! traffic; a corrupted or tampered disk fails startup rather than
//! silently serving forged state. Without a handle the server keeps the
//! original memory-only behavior.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_crypto::cosi::{self, Witness};
use fides_crypto::encoding::{Decodable, Encodable};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_crypto::Digest;
use fides_ledger::block::{Block, BlockBuilder, Decision, ShardRoot, TxnRecord};
use fides_ledger::log::TamperProofLog;
use fides_net::{Endpoint, Envelope, NodeId};
use fides_store::authenticated::AuthenticatedShard;
use fides_store::types::{ItemState, Key, Timestamp, Value};

use fides_durability::ShardSnapshot;

use crate::behavior::Behavior;
use crate::messages::{CommitProtocol, InvolvedVote, Message, PartialBlock, Refusal, TxnHandle};
use crate::occ;
use crate::partition::Partitioner;
use crate::recovery::Durability;

/// Map from node address to public key — the paper's "servers and
/// clients are uniquely identifiable using their public keys" (§3.1).
pub type Directory = Arc<HashMap<NodeId, PublicKey>>;

/// Mutable server state shared with the harness/auditor.
#[derive(Debug)]
pub struct ServerState {
    /// This server's index (= shard index).
    pub idx: u32,
    /// The authenticated datastore shard.
    pub shard: AuthenticatedShard,
    /// This server's copy of the globally replicated log.
    pub log: TamperProofLog,
    /// Highest committed transaction timestamp (end-txn requests at or
    /// below this are ignored, §4.3.1).
    pub last_committed: Timestamp,
    /// Fault-injection configuration.
    pub behavior: Behavior,
    /// Buffered (unapplied) writes per in-flight transaction (§4.2.1).
    pub write_buffers: HashMap<TxnHandle, Vec<(Key, Value)>>,
    /// CoSi witness state per block height.
    witnesses: HashMap<u64, Witness>,
    /// Root sent in the vote for each height (to detect replacement,
    /// Scenario 2).
    sent_roots: HashMap<u64, Digest>,
    /// Rounds this server refused to co-sign (protocol anomalies it
    /// detected first-hand).
    pub refusals: Vec<(u64, Refusal)>,
    /// Culprits the coordinator identified via partial-signature checks
    /// (Lemma 4): `(height, server indices)`.
    pub cosi_culprits: Vec<(u64, Vec<u32>)>,
    /// Decision blocks that arrived ahead of this server's log tip
    /// (out-of-order delivery). They are verified **in batch** and
    /// applied as soon as the gap closes (the catch-up loop).
    pending_decisions: std::collections::BTreeMap<u64, Block>,
    /// Persistence handles (`None` = original memory-only behavior).
    pub durability: Option<Durability>,
    /// Coordinator-side round statistics: protocol rounds completed,
    /// cumulative round time, and transactions committed — the paper's
    /// "commit latency" ("time taken to terminate a transaction once
    /// the client sends end transaction request") is
    /// `round_nanos / committed_txns`.
    pub round_stats: RoundStats,
}

/// Commit-round accounting (coordinator only).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Protocol rounds driven to completion.
    pub rounds: u64,
    /// Total wall-clock time inside rounds, in nanoseconds.
    pub round_nanos: u128,
    /// Transactions committed across all rounds.
    pub committed_txns: u64,
    /// Transactions aborted across all rounds.
    pub aborted_txns: u64,
}

impl ServerState {
    pub(crate) fn new(idx: u32, shard: AuthenticatedShard, behavior: Behavior) -> Self {
        ServerState {
            idx,
            shard,
            log: TamperProofLog::new(),
            last_committed: Timestamp::ZERO,
            behavior,
            write_buffers: HashMap::new(),
            witnesses: HashMap::new(),
            sent_roots: HashMap::new(),
            refusals: Vec::new(),
            cosi_culprits: Vec::new(),
            pending_decisions: std::collections::BTreeMap::new(),
            durability: None,
            round_stats: RoundStats::default(),
        }
    }

    /// The log copy this server would hand an auditor — with its log
    /// faults applied (tampering happens at surrender time, §4.4).
    pub fn log_for_audit(&self) -> TamperProofLog {
        let mut log = self.log.clone();
        if let Some(h) = self.behavior.tamper_log_at {
            log.tamper_block(h, |b| {
                b.decision = match b.decision {
                    Decision::Commit => Decision::Abort,
                    Decision::Abort => Decision::Commit,
                }
            });
        }
        if let Some((a, b)) = self.behavior.reorder_log {
            log.reorder_blocks(a, b);
        }
        if let Some(keep) = self.behavior.truncate_log_to {
            log.truncate(keep);
        }
        log
    }
}

/// Static per-server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// This server's index.
    pub idx: u32,
    /// Total number of servers.
    pub n_servers: u32,
    /// Which commitment protocol to run.
    pub protocol: CommitProtocol,
    /// Transactions per block (coordinator only).
    pub batch_size: usize,
    /// Idle time after which the coordinator terminates a partial batch.
    pub flush_interval: Duration,
    /// Phase timeout for vote/response collection.
    pub round_timeout: Duration,
}

/// The running server: message loop plus protocol handlers.
pub struct Server {
    state: Arc<parking_lot::Mutex<ServerState>>,
    endpoint: Endpoint,
    keypair: KeyPair,
    directory: Directory,
    partitioner: Partitioner,
    config: ServerConfig,
    /// Public keys of all servers, by index (the CoSi witness set).
    server_pks: Vec<PublicKey>,
    /// Coordinator: queued end-transaction requests.
    pending: Vec<PendingTxn>,
    /// Coordinator: clients to notify per handle.
    running: bool,
}

#[derive(Clone, Debug)]
struct PendingTxn {
    handle: TxnHandle,
    client: NodeId,
    record: TxnRecord,
}

/// The coordinator index (the "designated server", §4.1).
pub const COORDINATOR_IDX: u32 = 0;

/// Computes the node id of server `idx` (servers occupy the low id
/// range).
pub fn server_node(idx: u32) -> NodeId {
    NodeId::new(idx)
}

/// Node id of client `idx`.
pub fn client_node(idx: u32) -> NodeId {
    NodeId::new(1 << 20 | idx)
}

/// Node id of the harness/admin endpoint (sends `Flush`/`Shutdown`).
pub fn admin_node() -> NodeId {
    NodeId::new(u32::MAX)
}

impl Server {
    /// Builds a server around pre-constructed state. Returns the shared
    /// state handle for the harness/auditor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: ServerConfig,
        shard: AuthenticatedShard,
        behavior: Behavior,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
    ) -> (Server, Arc<parking_lot::Mutex<ServerState>>) {
        let state = ServerState::new(config.idx, shard, behavior);
        Server::from_state(
            config,
            state,
            endpoint,
            keypair,
            directory,
            partitioner,
            server_pks,
        )
    }

    /// Builds a server around an explicit [`ServerState`] — the restart
    /// path, where the state (log, shard, `last_committed`, durability
    /// handles) comes out of [`crate::recovery::recover_server`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_state(
        config: ServerConfig,
        state: ServerState,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
    ) -> (Server, Arc<parking_lot::Mutex<ServerState>>) {
        let state = Arc::new(parking_lot::Mutex::new(state));
        let server = Server {
            state: Arc::clone(&state),
            endpoint,
            keypair,
            directory,
            partitioner,
            config,
            server_pks,
            pending: Vec::new(),
            running: true,
        };
        (server, state)
    }

    fn is_coordinator(&self) -> bool {
        self.config.idx == COORDINATOR_IDX
    }

    /// The server's message loop. Returns when a `Shutdown` message
    /// arrives or the network disappears.
    pub fn run(mut self) {
        while self.running {
            match self.endpoint.recv_timeout(self.config.flush_interval) {
                Ok(env) => {
                    self.dispatch(env);
                    // Keep terminating as long as full batches are
                    // queued (later end-txns may have arrived during the
                    // previous round).
                    while self.running
                        && self.is_coordinator()
                        && self.pending.len() >= self.config.batch_size
                    {
                        let before = self.pending.len();
                        self.run_round();
                        if self.pending.len() >= before {
                            break; // nothing progressed (all deferred)
                        }
                    }
                }
                Err(fides_net::RecvError::Timeout) => {
                    if self.is_coordinator() && !self.pending.is_empty() {
                        self.run_round();
                    }
                }
                Err(fides_net::RecvError::Disconnected) => break,
            }
        }
    }

    /// Verifies and decodes an envelope; returns `None` (drops it) on
    /// any failure — unauthenticated messages are ignored (§3.1).
    fn authenticate(&self, env: &Envelope) -> Option<Message> {
        let pk = self.directory.get(&env.from)?;
        if !env.verify(pk) {
            return None;
        }
        Message::decode(&env.payload).ok()
    }

    fn send(&self, to: NodeId, msg: &Message) {
        let env = Envelope::sign(&self.keypair, self.endpoint.node(), to, msg.encode());
        self.endpoint.send(env);
    }

    fn broadcast_to_servers(&self, msg: &Message) {
        for s in 0..self.config.n_servers {
            if s != self.config.idx {
                self.send(server_node(s), msg);
            }
        }
    }

    fn dispatch(&mut self, env: Envelope) {
        let Some(msg) = self.authenticate(&env) else {
            return;
        };
        let from = env.from;
        match msg {
            Message::Begin { txn } => self.handle_begin(txn),
            Message::Read { txn, key } => self.handle_read(from, txn, key),
            Message::Write { txn, key, value } => self.handle_write(from, txn, key, value),
            Message::EndTxn { handle, record } => {
                // Rounds are driven by the main loop once a full batch
                // is pending.
                self.handle_end_txn(from, handle, record);
            }
            Message::Flush if self.is_coordinator() && !self.pending.is_empty() => {
                self.run_round();
            }
            Message::GetVote { partial } => self.handle_get_vote(from, partial),
            Message::Challenge {
                block,
                aggregate,
                challenge,
            } => self.handle_challenge(from, block, aggregate, challenge),
            Message::Decision { block } => self.handle_decision(block),
            Message::TwoPcGetVote { partial } => self.handle_2pc_get_vote(from, partial),
            Message::TwoPcDecision { block } => self.handle_2pc_decision(block),
            Message::Shutdown => self.running = false,
            // Responses to rounds we are not currently collecting for —
            // stale protocol traffic — are dropped.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Execution layer (§4.2.1).
    // ------------------------------------------------------------------

    fn handle_begin(&mut self, txn: TxnHandle) {
        self.state.lock().write_buffers.entry(txn).or_default();
    }

    fn handle_read(&mut self, from: NodeId, txn: TxnHandle, key: Key) {
        let state = self.state.lock();
        let reply = match state.shard.read(&key) {
            None => Message::ReadErr { txn, key },
            Some(item) => {
                let value = if state.behavior.stale_read_keys.contains(&key) {
                    stale_value(&state, &key, &item)
                } else {
                    item.value.clone()
                };
                Message::ReadResp {
                    txn,
                    key,
                    value,
                    rts: item.rts,
                    wts: item.wts,
                }
            }
        };
        drop(state);
        self.send(from, &reply);
    }

    fn handle_write(&mut self, from: NodeId, txn: TxnHandle, key: Key, value: Value) {
        let mut state = self.state.lock();
        let old = state
            .shard
            .read(&key)
            .map(|item| (item.value, item.rts, item.wts));
        state
            .write_buffers
            .entry(txn)
            .or_default()
            .push((key.clone(), value));
        drop(state);
        self.send(from, &Message::WriteAck { txn, key, old });
    }

    fn handle_end_txn(&mut self, from: NodeId, handle: TxnHandle, record: TxnRecord) {
        if !self.is_coordinator() {
            return; // only the designated coordinator terminates txns
        }
        let last = self.state.lock().last_committed;
        if record.id <= last {
            // §4.3.1: "servers ignore any end transaction request with a
            // timestamp lower than the latest committed timestamp" — we
            // additionally tell the client so it can retry.
            self.send(from, &Message::EndTxnRejected { handle, hint: last });
            return;
        }
        self.pending.push(PendingTxn {
            handle,
            client: from,
            record,
        });
    }

    // ------------------------------------------------------------------
    // Cohort: TFCommit phases 2 and 4 (§4.3.1).
    // ------------------------------------------------------------------

    /// Phase 2 `<Vote, SchCommitment>` — shared by cohorts (message
    /// handler) and the coordinator (local call).
    fn cohort_vote(&self, partial: &PartialBlock) -> (cosi::Commitment, Option<InvolvedVote>) {
        let mut state = self.state.lock();
        // Round id binds the nonce to (height, prev hash).
        let mut round_id = partial.height.to_be_bytes().to_vec();
        round_id.extend_from_slice(partial.prev_hash.as_bytes());
        let record_hint = partial.encode();
        let witness = Witness::commit(&self.keypair, &round_id, &record_hint);
        let commitment = witness.commitment();
        state.witnesses.insert(partial.height, witness);

        let involved = self.involvement(&partial.txns);
        let involved_vote = if involved.contains(&self.config.idx) {
            // Local OCC validation over this shard's slice (§4.3.1).
            let shard = &state.shard;
            let failed = occ::validate_batch(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            });
            // Also enforce the sequential-log rule for the whole batch.
            let stale = partial.txns.iter().any(|t| t.id <= state.last_committed);
            if failed.is_empty() && !stale {
                // Commit vote: compute the speculative root over all of
                // the block's writes that land on this shard.
                let writes = shard_writes(&partial.txns, &self.partitioner, self.config.idx);
                let root = state.shard.speculative_root(&writes);
                state.sent_roots.insert(partial.height, root);
                Some(InvolvedVote {
                    commit: true,
                    root: Some(root),
                    failed: Vec::new(),
                })
            } else {
                Some(InvolvedVote {
                    commit: false,
                    root: None,
                    failed,
                })
            }
        } else {
            None
        };
        (commitment, involved_vote)
    }

    fn handle_get_vote(&mut self, from: NodeId, partial: PartialBlock) {
        let (commitment, involved) = self.cohort_vote(&partial);
        self.send(
            from,
            &Message::Vote {
                height: partial.height,
                commitment,
                involved,
            },
        );
    }

    /// Phase 4 `<null, SchResponse>` — the cohort-side checks of
    /// Lemma 5 / Scenario 2 followed by the Schnorr response.
    fn cohort_response(
        &self,
        block: &Block,
        aggregate: &cosi::Commitment,
        challenge: &fides_crypto::scalar::Scalar,
    ) -> Result<cosi::Response, Refusal> {
        let mut state = self.state.lock();
        let involved = self.involvement(&block.txns);

        // Decision/roots consistency (§4.3.1 phase 4): a commit block
        // carries roots from *all* involved servers; an abort block has
        // at least one missing.
        let roots_present: HashSet<u32> = block.roots.iter().map(|r| r.server).collect();
        match block.decision {
            Decision::Commit => {
                if !involved.iter().all(|s| roots_present.contains(s)) {
                    return Err(Refusal::MissingRoots);
                }
            }
            Decision::Abort => {
                if !involved.is_empty() && involved.iter().all(|s| roots_present.contains(s)) {
                    return Err(Refusal::DecisionInconsistent);
                }
            }
        }

        // Own-root check (Scenario 2: a malicious coordinator storing an
        // incorrect root for a benign server is caught here).
        if let Some(sent) = state.sent_roots.get(&block.height) {
            if block.decision == Decision::Commit && block.root_of(self.config.idx) != Some(*sent) {
                return Err(Refusal::RootMismatch);
            }
        }

        // Challenge recomputation (Lemma 5 Case 1: an equivocating
        // coordinator's challenge cannot correspond to both blocks).
        let expected = cosi::challenge(&aggregate.0, &block.signing_bytes());
        if expected != *challenge {
            return Err(Refusal::BadChallenge);
        }

        let witness = state
            .witnesses
            .remove(&block.height)
            .ok_or(Refusal::BadChallenge)?;
        if state.behavior.corrupt_cosi_response {
            Ok(witness.respond_corrupt(challenge))
        } else {
            Ok(witness.respond(challenge))
        }
    }

    fn handle_challenge(
        &mut self,
        from: NodeId,
        block: Block,
        aggregate: cosi::Commitment,
        challenge: fides_crypto::scalar::Scalar,
    ) {
        let height = block.height;
        let result = self.cohort_response(&block, &aggregate, &challenge);
        if let Err(refusal) = &result {
            self.state.lock().refusals.push((height, *refusal));
        }
        self.send(from, &Message::Response { height, result });
    }

    /// Phase 5: verify the co-sign, then append and apply (§4.1 steps
    /// 6–7). Both commit and abort blocks are logged; only commit
    /// blocks update the datastore.
    ///
    /// Decisions that arrive **ahead** of this server's log tip
    /// (reordered delivery) are buffered unverified; once the gap
    /// closes, the whole consecutive run is verified with one
    /// [`cosi::verify_batch`] call in [`Server::catch_up`] instead of
    /// one full signature check per block.
    fn handle_decision(&mut self, block: Block) {
        /// Upper bound on buffered future decisions (memory guard).
        const MAX_BUFFERED_DECISIONS: u64 = 1024;

        let tip = self.state.lock().log.len() as u64;
        if block.height > tip {
            if block.height - tip <= MAX_BUFFERED_DECISIONS {
                self.state
                    .lock()
                    .pending_decisions
                    .insert(block.height, block);
            }
            return;
        }
        if !block
            .cosign
            .verify(&block.signing_bytes(), &self.server_pks)
        {
            // An unsigned/invalidly-signed block is never logged; the
            // anomaly surfaces at the clients and the audit.
            return;
        }
        self.apply_block(block, CommitProtocol::TfCommit);
        self.catch_up();
    }

    /// The catch-up loop: applies buffered decisions that have become
    /// consecutive with the log tip.
    ///
    /// The whole run is verified with a **single** batched
    /// collective-signature check; only if that fails does the loop
    /// fall back to per-block verification, applying valid blocks and
    /// stopping at the first invalid one (which cannot be linked into
    /// the chain, and whose absence will surface at the audit).
    fn catch_up(&mut self) {
        loop {
            let run: Vec<Block> = {
                let mut state = self.state.lock();
                let mut next = state.log.len() as u64;
                let mut run = Vec::new();
                while let Some(block) = state.pending_decisions.remove(&next) {
                    run.push(block);
                    next += 1;
                }
                // Drop stale entries at or below the tip.
                let tip = state.log.len() as u64;
                state.pending_decisions.retain(|&h, _| h > tip);
                run
            };
            if run.is_empty() {
                return;
            }
            let records: Vec<Vec<u8>> = run.iter().map(|b| b.signing_bytes()).collect();
            let items: Vec<(&[u8], cosi::CollectiveSignature)> = records
                .iter()
                .map(Vec::as_slice)
                .zip(run.iter().map(|b| b.cosign))
                .collect();
            if cosi::verify_batch(&items, &self.server_pks) {
                for block in run {
                    self.apply_block(block, CommitProtocol::TfCommit);
                }
            } else {
                // Pinpoint the first invalid signature; the chain
                // cannot continue past it.
                let valid_prefix = items
                    .iter()
                    .position(|(record, sig)| !sig.verify(record, &self.server_pks))
                    .unwrap_or(items.len());
                let mut blocks = run.into_iter();
                for block in blocks.by_ref().take(valid_prefix) {
                    self.apply_block(block, CommitProtocol::TfCommit);
                }
                // Discard the invalid block, but re-buffer the blocks
                // behind it: a correctly signed copy of the bad height
                // may still arrive and let them apply.
                let _invalid = blocks.next();
                let mut state = self.state.lock();
                for block in blocks {
                    state.pending_decisions.insert(block.height, block);
                }
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Cohort: 2PC baseline (§6.1).
    // ------------------------------------------------------------------

    fn handle_2pc_get_vote(&mut self, from: NodeId, partial: PartialBlock) {
        let state = self.state.lock();
        let involved = self.involvement(&partial.txns);
        let (commit, failed) = if involved.contains(&self.config.idx) {
            let shard = &state.shard;
            let failed = occ::validate_batch(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            });
            (failed.is_empty(), failed)
        } else {
            (true, Vec::new())
        };
        drop(state);
        self.send(
            from,
            &Message::TwoPcVote {
                height: partial.height,
                commit,
                failed,
            },
        );
    }

    fn handle_2pc_decision(&mut self, block: Block) {
        self.apply_block(block, CommitProtocol::TwoPhaseCommit);
    }

    // ------------------------------------------------------------------
    // Applying a terminated block.
    // ------------------------------------------------------------------

    fn apply_block(&mut self, block: Block, protocol: CommitProtocol) {
        let mut guard = self.state.lock();
        let state = &mut *guard;
        if state.log.get(block.height).is_some() {
            return; // duplicate decision (e.g. coordinator's local copy)
        }
        let decision = block.decision;
        let max_ts = block.max_txn_ts();
        if state.log.append(block.clone()).is_err() {
            return; // does not extend our log; ignore
        }
        // Write-ahead: the block is durable before the datastore moves.
        // One sync per block = group commit over the block's whole
        // transaction batch.
        if let Some(dur) = state.durability.as_mut() {
            dur.log
                .append_block(&block)
                .and_then(|()| dur.log.sync())
                .expect("write-ahead log append failed");
        }
        state.witnesses.remove(&block.height);
        state.sent_roots.remove(&block.height);

        if decision == Decision::Commit {
            for txn in &block.txns {
                let reads: Vec<Key> = txn
                    .read_set
                    .iter()
                    .filter(|r| self.partitioner.owner(&r.key) == self.config.idx)
                    .map(|r| r.key.clone())
                    .collect();
                let mut writes: Vec<(Key, Value)> = txn
                    .write_set
                    .iter()
                    .filter(|w| self.partitioner.owner(&w.key) == self.config.idx)
                    .map(|w| (w.key.clone(), w.new_value.clone()))
                    .collect();
                // Fault: silently skip configured writes (§5 Scenario 3).
                if !state.behavior.skip_write_keys.is_empty() {
                    let skip = state.behavior.skip_write_keys.clone();
                    writes.retain(|(k, _)| !skip.contains(k));
                }
                match protocol {
                    CommitProtocol::TfCommit => {
                        state.shard.apply_commit(txn.id, &reads, &writes);
                    }
                    CommitProtocol::TwoPhaseCommit => {
                        state.shard.apply_commit_store_only(txn.id, &reads, &writes);
                    }
                }
                // Clean the paper's write buffer for this txn.
                // (Handles are client-side; buffers are garbage-collected
                // lazily since the block only carries timestamps.)
            }
            if let Some(ts) = max_ts {
                if ts > state.last_committed {
                    state.last_committed = ts;
                }
            }
            // Fault: corrupt the datastore after applying (§5 Scenario 3).
            if let Some((key, value)) = state.behavior.corrupt_after_commit.clone() {
                if self.partitioner.owner(&key) == self.config.idx {
                    if let Some(ts) = max_ts {
                        state.shard.store_mut().corrupt_version(&key, ts, value);
                    }
                }
            }
        }

        // Periodic checkpoint: snapshot the shard (with the block's
        // writes applied) so recovery replays only the suffix above it.
        // Only under TFCommit: the 2PC baseline maintains no Merkle
        // tree, so there is no meaningful root to bind a snapshot to —
        // its recovery replays the full (unsigned) log instead.
        if let Some(dur) = state.durability.as_mut() {
            let height = state.log.len() as u64;
            if protocol == CommitProtocol::TfCommit
                && dur.snapshot_interval > 0
                && height.is_multiple_of(dur.snapshot_interval)
            {
                let snapshot = ShardSnapshot::capture(
                    &state.shard,
                    height,
                    state.log.tip_hash(),
                    state.last_committed,
                );
                dur.snapshots
                    .save(&snapshot)
                    .expect("shard snapshot save failed");
            }
        }
    }

    // ------------------------------------------------------------------
    // Coordinator (§4.1: "one designated server acts as the transaction
    // coordinator responsible for terminating all transactions").
    // ------------------------------------------------------------------

    /// Terminates the current pending batch with one protocol round.
    fn run_round(&mut self) {
        let batch = self.select_batch();
        if batch.is_empty() {
            return;
        }
        let n_txns = batch.len() as u64;
        let height_before = self.state.lock().log.len();
        let start = Instant::now();
        match self.config.protocol {
            CommitProtocol::TfCommit => self.run_tfcommit_round(batch),
            CommitProtocol::TwoPhaseCommit => self.run_2pc_round(batch),
        }
        let elapsed = start.elapsed();
        let mut state = self.state.lock();
        state.round_stats.rounds += 1;
        state.round_stats.round_nanos += elapsed.as_nanos();
        // Committed iff the round appended a commit block.
        let committed = state.log.len() > height_before
            && state
                .log
                .last()
                .is_some_and(|b| b.decision == Decision::Commit);
        if committed {
            state.round_stats.committed_txns += n_txns;
        } else {
            state.round_stats.aborted_txns += n_txns;
        }
    }

    /// Picks up to `batch_size` pending transactions, in timestamp
    /// order, skipping any that conflict (share a key) with an earlier
    /// selection — "a set of non-conflicting transactions" (§4.6).
    fn select_batch(&mut self) -> Vec<PendingTxn> {
        self.pending.sort_by_key(|p| p.record.id);
        let mut touched: HashSet<Key> = HashSet::new();
        let mut batch = Vec::new();
        let mut rest = Vec::new();
        for txn in self.pending.drain(..) {
            let keys: Vec<Key> = txn
                .record
                .read_set
                .iter()
                .map(|r| r.key.clone())
                .chain(txn.record.write_set.iter().map(|w| w.key.clone()))
                .collect();
            let conflicts = keys.iter().any(|k| touched.contains(k));
            if batch.len() < self.config.batch_size && !conflicts {
                touched.extend(keys);
                batch.push(txn);
            } else {
                rest.push(txn);
            }
        }
        self.pending = rest;
        batch
    }

    fn run_tfcommit_round(&mut self, batch: Vec<PendingTxn>) {
        let (height, prev_hash) = {
            let state = self.state.lock();
            (state.log.len() as u64, state.log.tip_hash())
        };
        let partial = PartialBlock {
            height,
            txns: batch.iter().map(|p| p.record.clone()).collect(),
            prev_hash,
        };

        // Phase 1 <GetVote, SchAnnouncement>.
        self.broadcast_to_servers(&Message::GetVote {
            partial: partial.clone(),
        });
        // The coordinator is also a witness/cohort (§4.3.1 phase 2).
        let (own_commitment, own_involved) = self.cohort_vote(&partial);

        // Phase 2: collect votes from every other server.
        let mut commitments: Vec<Option<cosi::Commitment>> =
            vec![None; self.config.n_servers as usize];
        let mut involved_votes: Vec<Option<InvolvedVote>> =
            vec![None; self.config.n_servers as usize];
        commitments[self.config.idx as usize] = Some(own_commitment);
        involved_votes[self.config.idx as usize] = own_involved;

        let ok = self.collect_votes(height, &mut commitments, &mut involved_votes);
        if !ok {
            // Timed-out round (crashed cohort): TFCommit is blocking
            // (§4.3.1); we surface the failure to the clients instead of
            // blocking forever.
            self.reject_batch(&batch);
            return;
        }

        // Phase 3 <null, SchChallenge>: form the decision and the block.
        let all_commit = involved_votes.iter().flatten().all(|v| v.commit);
        let decision = if all_commit {
            Decision::Commit
        } else {
            Decision::Abort
        };
        let mut builder = BlockBuilder::new(height, prev_hash)
            .txns(partial.txns.clone())
            .decision(decision);
        for (s, vote) in involved_votes.iter().enumerate() {
            if let Some(InvolvedVote {
                commit: true,
                root: Some(root),
                ..
            }) = vote
            {
                builder = builder.root(ShardRoot {
                    server: s as u32,
                    root: *root,
                });
            }
        }
        let mut block = builder.build_unsigned();

        // Fault: replace a benign server's root (§5 Scenario 2).
        let fake_root_for = self.state.lock().behavior.fake_root_for;
        if let Some(victim) = fake_root_for {
            for r in &mut block.roots {
                if r.server == victim {
                    r.root = Digest::new([0xEE; 32]);
                }
            }
        }

        let all_commitments: Vec<cosi::Commitment> =
            commitments.iter().map(|c| c.expect("collected")).collect();
        let aggregate =
            cosi::Commitment(cosi::aggregate_commitments(all_commitments.iter().copied()));
        let challenge = cosi::challenge(&aggregate.0, &block.signing_bytes());

        // Fault: equivocate (Lemma 5 Case 1) — commit block to even
        // cohorts, abort block to odd cohorts, same challenge.
        let equivocate = self.state.lock().behavior.equivocate_decision;
        if equivocate {
            let alt = Block {
                decision: Decision::Abort,
                roots: Vec::new(),
                ..block.clone()
            };
            for s in 0..self.config.n_servers {
                if s == self.config.idx {
                    continue;
                }
                let which = if s % 2 == 0 {
                    block.clone()
                } else {
                    alt.clone()
                };
                self.send(
                    server_node(s),
                    &Message::Challenge {
                        block: which,
                        aggregate,
                        challenge,
                    },
                );
            }
        } else {
            self.broadcast_to_servers(&Message::Challenge {
                block: block.clone(),
                aggregate,
                challenge,
            });
        }

        // The coordinator's own response.
        let own_response = self.cohort_response(&block, &aggregate, &challenge);

        // Phase 4: collect responses.
        let mut responses: Vec<Option<Result<cosi::Response, Refusal>>> =
            vec![None; self.config.n_servers as usize];
        responses[self.config.idx as usize] = Some(own_response);
        if !self.collect_responses(height, &mut responses) {
            self.reject_batch(&batch);
            return;
        }

        // Phase 5 <Decision, null>: assemble the collective signature.
        let mut ok_responses = Vec::with_capacity(self.config.n_servers as usize);
        let mut refused = false;
        for r in responses.iter().flatten() {
            match r {
                Ok(resp) => ok_responses.push(*resp),
                Err(_) => refused = true,
            }
        }
        let cosign = if refused {
            // At least one cohort refused: no valid signature can exist.
            fides_crypto::cosi::CollectiveSignature::placeholder()
        } else {
            let sig = fides_crypto::cosi::CollectiveSignature::assemble(
                aggregate.0,
                ok_responses.iter().copied(),
            );
            // Lemma 4: an invalid aggregate lets the coordinator identify
            // the precise culprits by checking partial signatures.
            if !sig.verify(&block.signing_bytes(), &self.server_pks) {
                let resp_list: Vec<cosi::Response> = ok_responses.clone();
                let culprits: Vec<u32> = cosi::identify_invalid_responses(
                    &challenge,
                    &all_commitments,
                    &resp_list,
                    &self.server_pks,
                )
                .into_iter()
                .map(|i| i as u32)
                .collect();
                self.state.lock().cosi_culprits.push((height, culprits));
            }
            sig
        };

        let signed = Block { cosign, ..block };
        self.broadcast_to_servers(&Message::Decision {
            block: signed.clone(),
        });
        self.handle_decision(signed.clone());

        // Figure 5 step 8: respond to the clients.
        for p in &batch {
            self.send(
                p.client,
                &Message::Outcome {
                    handle: p.handle,
                    block: signed.clone(),
                },
            );
        }
    }

    fn run_2pc_round(&mut self, batch: Vec<PendingTxn>) {
        let (height, prev_hash) = {
            let state = self.state.lock();
            (state.log.len() as u64, state.log.tip_hash())
        };
        let partial = PartialBlock {
            height,
            txns: batch.iter().map(|p| p.record.clone()).collect(),
            prev_hash,
        };
        self.broadcast_to_servers(&Message::TwoPcGetVote {
            partial: partial.clone(),
        });

        // Own vote.
        let own_commit = {
            let state = self.state.lock();
            let shard = &state.shard;
            occ::validate_batch(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            })
            .is_empty()
        };

        let mut votes: Vec<Option<bool>> = vec![None; self.config.n_servers as usize];
        votes[self.config.idx as usize] = Some(own_commit);
        if !self.collect_2pc_votes(height, &mut votes) {
            self.reject_batch(&batch);
            return;
        }
        let decision = if votes.iter().flatten().all(|c| *c) {
            Decision::Commit
        } else {
            Decision::Abort
        };
        let block = BlockBuilder::new(height, prev_hash)
            .txns(partial.txns)
            .decision(decision)
            .build_unsigned();
        self.broadcast_to_servers(&Message::TwoPcDecision {
            block: block.clone(),
        });
        self.handle_2pc_decision(block.clone());
        for p in &batch {
            self.send(
                p.client,
                &Message::Outcome {
                    handle: p.handle,
                    block: block.clone(),
                },
            );
        }
    }

    fn reject_batch(&mut self, batch: &[PendingTxn]) {
        let hint = self.state.lock().last_committed;
        for p in batch {
            self.send(
                p.client,
                &Message::EndTxnRejected {
                    handle: p.handle,
                    hint,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Round message collection. While waiting for protocol responses the
    // coordinator keeps servicing execution-layer traffic so clients of
    // *other* transactions are not blocked.
    // ------------------------------------------------------------------

    fn collect_votes(
        &mut self,
        height: u64,
        commitments: &mut [Option<cosi::Commitment>],
        involved: &mut [Option<InvolvedVote>],
    ) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = commitments.iter().filter(|c| c.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::Vote {
                height: h,
                commitment,
                involved: inv,
            } = msg
            {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if commitments[idx].is_none() {
                        commitments[idx] = Some(commitment);
                        involved[idx] = inv;
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    fn collect_responses(
        &mut self,
        height: u64,
        responses: &mut [Option<Result<cosi::Response, Refusal>>],
    ) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = responses.iter().filter(|r| r.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::Response { height: h, result } = msg {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if responses[idx].is_none() {
                        responses[idx] = Some(result);
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    fn collect_2pc_votes(&mut self, height: u64, votes: &mut [Option<bool>]) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = votes.iter().filter(|v| v.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::TwoPcVote {
                height: h, commit, ..
            } = msg
            {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if votes[idx].is_none() {
                        votes[idx] = Some(commit);
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    /// Receives during a protocol round: execution messages are serviced
    /// inline, end-transaction requests are queued for the next batch,
    /// protocol messages are returned to the caller. `None` = deadline
    /// passed.
    fn recv_during_round(&mut self, deadline: Instant) -> Option<(NodeId, Message)> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let env = match self.endpoint.recv_timeout(deadline - now) {
                Ok(env) => env,
                Err(_) => return None,
            };
            let Some(msg) = self.authenticate(&env) else {
                continue;
            };
            let from = env.from;
            match msg {
                Message::Begin { txn } => self.handle_begin(txn),
                Message::Read { txn, key } => self.handle_read(from, txn, key),
                Message::Write { txn, key, value } => self.handle_write(from, txn, key, value),
                Message::EndTxn { handle, record } => self.handle_end_txn(from, handle, record),
                Message::Flush => {} // already mid-round
                Message::Shutdown => {
                    self.running = false;
                    return None;
                }
                other => return Some((from, other)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers.
    // ------------------------------------------------------------------

    /// The servers whose shards are accessed by these transactions.
    fn involvement(&self, txns: &[TxnRecord]) -> HashSet<u32> {
        let mut set = HashSet::new();
        for txn in txns {
            for r in &txn.read_set {
                set.insert(self.partitioner.owner(&r.key));
            }
            for w in &txn.write_set {
                set.insert(self.partitioner.owner(&w.key));
            }
        }
        set
    }
}

/// All writes in the batch that land on `server`'s shard, in txn order.
fn shard_writes(txns: &[TxnRecord], partitioner: &Partitioner, server: u32) -> Vec<(Key, Value)> {
    let mut writes = Vec::new();
    for txn in txns {
        for w in &txn.write_set {
            if partitioner.owner(&w.key) == server {
                writes.push((w.key.clone(), w.new_value.clone()));
            }
        }
    }
    writes
}

/// Previous-version value used by the stale-read fault (§5 Scenario 1:
/// the malicious server returns the old value with up-to-date
/// timestamps).
fn stale_value(state: &ServerState, key: &Key, item: &ItemState) -> Value {
    let wts = item.wts;
    if wts == Timestamp::ZERO {
        return item.value.clone();
    }
    let just_before = Timestamp::new(wts.counter().saturating_sub(1), u32::MAX);
    state
        .shard
        .store()
        .value_at(key, just_before)
        .unwrap_or_else(|| item.value.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ranges_are_disjoint() {
        assert_ne!(server_node(0), client_node(0));
        assert_ne!(client_node(0), admin_node());
        assert!(server_node(100).raw() < client_node(0).raw());
    }

    #[test]
    fn shard_writes_filters_by_owner() {
        use fides_store::rwset::WriteEntry;
        let p = Partitioner::from_assignments(2, [(Key::new("a"), 0), (Key::new("b"), 1)]);
        let txn = TxnRecord {
            id: Timestamp::new(1, 0),
            read_set: vec![],
            write_set: vec![
                WriteEntry {
                    key: Key::new("a"),
                    new_value: Value::from_i64(1),
                    old_value: None,
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                },
                WriteEntry {
                    key: Key::new("b"),
                    new_value: Value::from_i64(2),
                    old_value: None,
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                },
            ],
        };
        let w0 = shard_writes(std::slice::from_ref(&txn), &p, 0);
        assert_eq!(w0.len(), 1);
        assert_eq!(w0[0].0, Key::new("a"));
        let w1 = shard_writes(&[txn], &p, 1);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].0, Key::new("b"));
    }
}
