//! The Fides database server (paper §3.1 Figure 3, §4).
//!
//! Each server is one thread owning the four components of Figure 3:
//! an **execution layer** (transactional reads and buffered writes), a
//! **commitment layer** (TFCommit cohort and, on the designated server,
//! the TFCommit coordinator; or their 2PC counterparts), a **datastore**
//! (a Merkle-authenticated multi-versioned shard) and the
//! **tamper-proof log**.
//!
//! # The pipelined commit hot path
//!
//! Server state is **lock-split into independent stages** (see
//! `docs/pipeline.md` for the full locking protocol), so the commit
//! path of block *h* overlaps work on its neighbours instead of
//! serializing everything behind one state mutex:
//!
//! * [`ExecState`] — write buffers, CoSi witnesses, buffered
//!   out-of-order decisions (the inbox/validation stage);
//! * [`ShardStage`] — the Merkle-authenticated datastore, whose batch
//!   leaf updates fan out over the process-wide thread pool
//!   (`MerkleTree::update_leaves_parallel`);
//! * [`LedgerStage`] — the tamper-proof log plus audit evidence;
//! * the durability stage — a [`Durability`] engine which, under
//!   `SyncPolicy::Pipelined`, is a dedicated WAL writer thread batching
//!   appends **across rounds** behind one covering fsync.
//!
//! A server therefore validates block *h+1* (exec + shard reads) while
//! the pool is hashing *h*'s subtree updates and the writer thread is
//! fsyncing *h−1*. Stage locks are never held two at a time by the
//! commit path; cross-stage consistency for the auditor comes from
//! [`ShardStage::applied_height`] (see [`ServerState::audit_snapshot`]).
//!
//! # Persistence
//!
//! A server may carry a [`Durability`] engine (attached at
//! construction, see [`crate::recovery`]). Every terminated block —
//! commit *and* abort — is appended to the durable log; inline modes
//! fsync on the commit path, the pipelined mode defers the fsync to the
//! writer thread and **acknowledges commits to clients only after the
//! covering fsync** (ordered acks). Every `snapshot_interval` blocks
//! the shard is checkpointed so restarts replay only a log suffix; the
//! pipelined mode saves snapshots only once their height is durable and
//! can prune WAL segments below them. On restart,
//! [`crate::recovery::recover_server`] re-validates the whole persisted
//! chain (hash links + batched collective-signature verification) and
//! cross-checks the replayed shard against the co-signed Merkle roots
//! before the server is allowed to serve traffic; a corrupted or
//! tampered disk fails startup rather than silently serving forged
//! state. Without an engine the server keeps the original memory-only
//! behavior.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_crypto::cosi::{self, Witness};
use fides_crypto::encoding::{Decodable, Encodable};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_crypto::Digest;
use fides_ledger::block::{Block, BlockBuilder, BlockHeader, Decision, ShardRoot, TxnRecord};
use fides_ledger::log::TamperProofLog;
use fides_net::{Endpoint, Envelope, NodeId};
use fides_store::authenticated::{AuthenticatedShard, MhtUpdateStats};
use fides_store::types::{ItemState, Key, Timestamp, Value};

use fides_durability::ShardSnapshot;
use fides_net::EndpointSender;

use crate::behavior::Behavior;
use crate::messages::{CommitProtocol, InvolvedVote, Message, PartialBlock, Refusal, TxnHandle};
use crate::occ;
use crate::partition::Partitioner;
use crate::recovery::{Durability, RecoveredServer};
use crate::repair::{verify_transfer, RepairEvidence, RepairFault, RepairShared};
use crate::telemetry::ServerTelemetry;
use fides_telemetry::trace::now_ns;
use fides_telemetry::{FlightRecorder, Level, Span, Stage, Stall, Stopwatch, TraceContext};

/// Map from node address to public key — the paper's "servers and
/// clients are uniquely identifiable using their public keys" (§3.1).
pub type Directory = Arc<HashMap<NodeId, PublicKey>>;

/// The inbox/validation stage: per-transaction buffers and per-round
/// protocol state. Touched by the execution layer and the vote/response
/// phases — never by the block-apply hot path's heavy work.
#[derive(Debug, Default)]
pub struct ExecState {
    /// Buffered (unapplied) writes per in-flight transaction (§4.2.1).
    pub write_buffers: HashMap<TxnHandle, Vec<(Key, Value)>>,
    /// CoSi witness state per block height.
    witnesses: HashMap<u64, Witness>,
    /// Root sent in the vote for each height (to detect replacement,
    /// Scenario 2).
    sent_roots: HashMap<u64, Digest>,
    /// Decision blocks that arrived ahead of this server's log tip
    /// (out-of-order delivery). They are verified **in batch** and
    /// applied as soon as the gap closes (the catch-up loop).
    pending_decisions: BTreeMap<u64, Block>,
    /// Rotation: `GetVote` rounds that arrived ahead of this server's
    /// log tip — the next leader raced this cohort's application of the
    /// previous decision. Voted as soon as catch-up closes the gap.
    gated_votes: BTreeMap<u64, (NodeId, PartialBlock)>,
    /// Rotation: `Challenge` phases that arrived ahead of the log tip,
    /// replayed after catch-up (same race as `gated_votes`).
    gated_challenges: BTreeMap<
        u64,
        (
            NodeId,
            Box<Block>,
            cosi::Commitment,
            fides_crypto::scalar::Scalar,
        ),
    >,
}

/// Where the co-signed root covering a shard's current state lives —
/// what a snapshot-read response must hand the client as its trust
/// anchor.
#[derive(Debug, Clone)]
pub enum RootProvenance {
    /// No root-bearing block has touched this shard yet: its state is
    /// the deterministic genesis population, which clients hold as a
    /// trusted root (applied height 0).
    Genesis,
    /// The newest applied block that carried this shard's root; its
    /// header is the self-authenticating carrier (applied height =
    /// `header.height + 1`).
    Header(Box<BlockHeader>),
    /// The state descends from a checkpoint whose co-signed root lives
    /// in a block this server no longer holds (checkpoint bootstrap
    /// with a root-less suffix): reads are refused until the next
    /// root-bearing block lands.
    Unknown,
}

impl RootProvenance {
    /// The newest applied block carrying the shard's root, from a log.
    fn from_log(log: &TamperProofLog, idx: u32) -> RootProvenance {
        for block in log.blocks().iter().rev() {
            if block.decision == Decision::Commit && block.root_of(idx).is_some() {
                return RootProvenance::Header(Box::new(block.header()));
            }
        }
        if log.base_height() == 0 {
            RootProvenance::Genesis
        } else {
            RootProvenance::Unknown
        }
    }

    /// `(applied root height, header to ship)` — `None` when reads
    /// cannot be anchored.
    fn anchor(&self) -> Option<(u64, Option<BlockHeader>)> {
        match self {
            RootProvenance::Genesis => Some((0, None)),
            RootProvenance::Header(h) => Some((h.height + 1, Some((**h).clone()))),
            RootProvenance::Unknown => None,
        }
    }
}

/// The datastore stage: the Merkle-authenticated shard plus the commit
/// watermark reads validate against.
#[derive(Debug)]
pub struct ShardStage {
    /// The authenticated datastore shard.
    pub shard: AuthenticatedShard,
    /// Highest committed transaction timestamp (end-txn requests at or
    /// below this are ignored, §4.3.1).
    pub last_committed: Timestamp,
    /// Height up to which blocks have been applied to the shard. Lags
    /// the ledger stage briefly while a block is mid-apply; the auditor
    /// uses it to take consistent (log, shard) snapshots.
    pub applied_height: u64,
    /// Provenance of the co-signed root covering the shard's current
    /// state (the verified read plane's trust anchor).
    pub last_root: RootProvenance,
    /// Newest committed write timestamp per key, across **all** shards
    /// (every server applies every commit block). The leader's batch
    /// former consults this to keep transactions whose read set is
    /// already overwritten — certain to abort under OCC — out of clean
    /// blocks ([`Server::select_batch`]).
    pub write_watermarks: HashMap<Key, Timestamp>,
}

/// A mirror's read-serving state, built once per mirrored checkpoint
/// and swapped **atomically** (one `Arc` per checkpoint): a read served
/// mid-supersede sees exactly one `(shard, root)` pair, never a torn
/// mix of old and new mirror.
#[derive(Debug)]
struct MirrorReadState {
    /// The mirrored checkpoint's applied height (= coverage watermark).
    covered: u64,
    /// Applied height of the co-signed root anchoring the mirror.
    root_height: u64,
    /// The root's carrier (`None` = genesis).
    header: Option<BlockHeader>,
    /// The restored shard the proofs are generated from.
    shard: AuthenticatedShard,
}

/// The ledger stage: the replicated log plus the audit evidence this
/// server accumulates.
#[derive(Debug, Default)]
pub struct LedgerStage {
    /// This server's copy of the globally replicated log.
    pub log: TamperProofLog,
    /// Rounds this server refused to co-sign (protocol anomalies it
    /// detected first-hand).
    pub refusals: Vec<(u64, Refusal)>,
    /// Culprits the coordinator identified via partial-signature checks
    /// (Lemma 4): `(height, server indices)`.
    pub cosi_culprits: Vec<(u64, Vec<u32>)>,
    /// Coordinator-side round statistics.
    pub round_stats: RoundStats,
}

/// Server state shared with the harness/auditor, **lock-split into
/// independently locked stages** so the commit pipeline's stages never
/// contend on one global mutex (see module docs). The commit path
/// acquires at most one stage lock at a time, in the fixed order
/// exec → shard → ledger → durability; multi-stage readers (the
/// auditor) synchronize through [`ShardStage::applied_height`].
#[derive(Debug)]
pub struct ServerState {
    /// This server's index (= shard index).
    pub idx: u32,
    /// Fault-injection configuration (immutable once running).
    behavior: Behavior,
    exec: parking_lot::Mutex<ExecState>,
    shard: parking_lot::Mutex<ShardStage>,
    ledger: parking_lot::Mutex<LedgerStage>,
    /// Persistence engine (`None` = original memory-only behavior).
    durability: parking_lot::Mutex<Option<Durability>>,
    /// Repair-plane state: lagging/repairing status, refuted-transfer
    /// evidence, and peers' checkpoint mirrors.
    repair: parking_lot::Mutex<RepairShared>,
    /// Per-origin mirror read-serving state, rebuilt lazily whenever a
    /// newer mirror supersedes the cached one (see [`MirrorReadState`]).
    mirror_reads: parking_lot::Mutex<HashMap<u32, Arc<MirrorReadState>>>,
    /// Lock-free metric handles (stage timers, counters, event ring).
    /// Recording never takes a stage lock; snapshots go through
    /// [`ServerState::metrics`].
    pub telemetry: ServerTelemetry,
}

/// Commit-round accounting (coordinator only).
///
/// The paper's "commit latency" ("time taken to terminate a transaction
/// once the client sends end transaction request") is
/// `round_nanos / committed_txns`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Protocol rounds driven to completion.
    pub rounds: u64,
    /// Total wall-clock time inside rounds, in nanoseconds.
    pub round_nanos: u128,
    /// Transactions committed across all rounds.
    pub committed_txns: u64,
    /// Transactions aborted across all rounds.
    pub aborted_txns: u64,
}

impl RoundStats {
    /// Folds another server's stats in — under rotating leadership the
    /// cluster's round accounting is the sum over every leader.
    pub fn merge(&mut self, other: &RoundStats) {
        self.rounds += other.rounds;
        self.round_nanos += other.round_nanos;
        self.committed_txns += other.committed_txns;
        self.aborted_txns += other.aborted_txns;
    }
}

impl ServerState {
    pub(crate) fn new(idx: u32, shard: AuthenticatedShard, behavior: Behavior) -> Self {
        ServerState {
            idx,
            behavior,
            exec: parking_lot::Mutex::new(ExecState::default()),
            shard: parking_lot::Mutex::new(ShardStage {
                shard,
                last_committed: Timestamp::ZERO,
                applied_height: 0,
                last_root: RootProvenance::Genesis,
                write_watermarks: HashMap::new(),
            }),
            ledger: parking_lot::Mutex::new(LedgerStage::default()),
            durability: parking_lot::Mutex::new(None),
            repair: parking_lot::Mutex::new(RepairShared::default()),
            mirror_reads: parking_lot::Mutex::new(HashMap::new()),
            telemetry: ServerTelemetry::new(idx as u64),
        }
    }

    /// State for a restarted server: log, shard, commit watermark,
    /// durability engine and persisted checkpoint mirrors come out of
    /// [`crate::recovery::recover_server`].
    pub(crate) fn recovered(idx: u32, behavior: Behavior, recovered: RecoveredServer) -> Self {
        let applied_height = recovered.log.next_height();
        let repair = RepairShared {
            mirrors: recovered.mirrors.into_iter().collect(),
            // A provisionally adopted checkpoint (snapshot ahead of a
            // torn WAL) starts the server in `Repairing`: it must not
            // serve commit votes until a peer's co-signed chain
            // confirms or replaces the adopted tip.
            repairing: recovered.provisional,
            since: recovered.provisional.then(Instant::now),
            ..RepairShared::default()
        };
        let last_root = RootProvenance::from_log(&recovered.log, idx);
        ServerState {
            idx,
            behavior,
            exec: parking_lot::Mutex::new(ExecState::default()),
            shard: parking_lot::Mutex::new(ShardStage {
                shard: recovered.shard,
                last_committed: recovered.last_committed,
                applied_height,
                last_root,
                write_watermarks: watermarks_from_log(&recovered.log),
            }),
            ledger: parking_lot::Mutex::new(LedgerStage {
                log: recovered.log,
                ..LedgerStage::default()
            }),
            durability: parking_lot::Mutex::new(Some(recovered.durability)),
            repair: parking_lot::Mutex::new(repair),
            mirror_reads: parking_lot::Mutex::new(HashMap::new()),
            telemetry: ServerTelemetry::new(idx as u64),
        }
    }

    /// A point-in-time snapshot of this server's metrics.
    pub fn metrics(&self) -> fides_telemetry::MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// The structured events this server recorded (newest-capacity
    /// window), ordered by sequence number.
    pub fn events(&self) -> Vec<fides_telemetry::Event> {
        self.telemetry.events.snapshot()
    }

    /// The fault-injection configuration.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// A point-in-time copy of this server's log.
    pub fn log(&self) -> TamperProofLog {
        self.ledger.lock().log.clone()
    }

    /// The log's tip height (`base + len` — correct for suffix logs).
    pub fn next_height(&self) -> u64 {
        self.ledger.lock().log.next_height()
    }

    /// Runs `f` over the shard (read access for tests/examples).
    pub fn with_shard<R>(&self, f: impl FnOnce(&AuthenticatedShard) -> R) -> R {
        f(&self.shard.lock().shard)
    }

    /// Runs `f` over the shard mutably — fault injection in tests.
    #[doc(hidden)]
    pub fn with_shard_mut<R>(&self, f: impl FnOnce(&mut AuthenticatedShard) -> R) -> R {
        f(&mut self.shard.lock().shard)
    }

    /// Highest committed transaction timestamp.
    pub fn last_committed(&self) -> Timestamp {
        self.shard.lock().last_committed
    }

    /// Refusals this server recorded (protocol anomalies).
    pub fn refusals(&self) -> Vec<(u64, Refusal)> {
        self.ledger.lock().refusals.clone()
    }

    /// Culprits identified by partial-signature checks (Lemma 4).
    pub fn cosi_culprits(&self) -> Vec<(u64, Vec<u32>)> {
        self.ledger.lock().cosi_culprits.clone()
    }

    /// Commit-round statistics (meaningful on the coordinator).
    pub fn round_stats(&self) -> RoundStats {
        self.ledger.lock().round_stats
    }

    /// Merkle-maintenance statistics.
    pub fn mht_stats(&self) -> MhtUpdateStats {
        self.shard.lock().shard.stats()
    }

    /// Zeroes the Merkle-maintenance statistics.
    pub fn reset_mht_stats(&self) {
        self.shard.lock().shard.reset_stats();
    }

    /// `true` while this server is repairing (gap detected, verified
    /// state transfer not yet installed). A repairing server votes
    /// abort for blocks touching its shard and is treated by the
    /// auditor as lagging, not faulty, until the grace deadline.
    pub fn is_repairing(&self) -> bool {
        self.repair.lock().repairing
    }

    /// When the current repair began (`None` when not repairing).
    pub fn repair_since(&self) -> Option<Instant> {
        self.repair.lock().since
    }

    /// Completed verified repairs over this server's lifetime.
    pub fn repair_completions(&self) -> u64 {
        self.repair.lock().completions
    }

    /// Refuted transfer attempts recorded against Byzantine peers.
    pub fn repair_evidence(&self) -> Vec<RepairEvidence> {
        self.repair.lock().evidence.clone()
    }

    /// Heights of the checkpoint mirrors this server holds for peers.
    pub fn mirror_heights(&self) -> Vec<(u32, u64)> {
        let repair = self.repair.lock();
        let mut heights: Vec<(u32, u64)> = repair
            .mirrors
            .iter()
            .map(|(origin, snap)| (*origin, snap.height))
            .collect();
        heights.sort_unstable();
        heights
    }

    /// The newest snapshot persisted on this server's disk — what it
    /// surrenders to the auditor so a suffix-log audit (peers pruned
    /// their WALs) can seed its replay from verified checkpoints.
    pub fn persisted_snapshot(&self) -> Option<ShardSnapshot> {
        let durability = self.durability.lock();
        match durability.as_ref()? {
            Durability::Inline { snapshots, .. } => snapshots.load_latest().ok().flatten(),
            Durability::Pipelined { pipeline, .. } => pipeline.load_latest_snapshot(),
        }
    }

    /// Height below which this server's blocks are durable — `None`
    /// without persistence; under inline durability every applied block
    /// is durable.
    pub fn durable_height(&self) -> Option<u64> {
        let durability = self.durability.lock();
        match durability.as_ref()? {
            Durability::Pipelined { pipeline, .. } => Some(pipeline.durable_height()),
            Durability::Inline { log, .. } => Some(log.block_count()),
        }
    }

    /// Blocks until everything submitted to the durability engine is
    /// stable (no-op without persistence or in inline mode, where the
    /// commit path already fsyncs).
    pub fn flush_durability(&self) {
        let durability = self.durability.lock();
        if let Some(Durability::Pipelined { pipeline, .. }) = durability.as_ref() {
            pipeline.flush();
        }
    }

    /// The log copy this server would hand an auditor — with its log
    /// faults applied (tampering happens at surrender time, §4.4).
    pub fn log_for_audit(&self) -> TamperProofLog {
        self.faulted(self.log())
    }

    fn faulted(&self, mut log: TamperProofLog) -> TamperProofLog {
        if let Some(h) = self.behavior.tamper_log_at {
            log.tamper_block(h, |b| {
                b.decision = match b.decision {
                    Decision::Commit => Decision::Abort,
                    Decision::Abort => Decision::Commit,
                }
            });
        }
        if let Some((a, b)) = self.behavior.reorder_log {
            log.reorder_blocks(a, b);
        }
        if let Some(keep) = self.behavior.truncate_log_to {
            log.truncate(keep);
        }
        log
    }

    /// Drops the durability engine, flushing a pipelined one (its Drop
    /// drains, fsyncs and joins the writer thread). Called by cluster
    /// shutdown so a restart can reopen the same directories.
    pub(crate) fn shutdown_durability(&self) {
        let _ = self.durability.lock().take();
    }

    /// Crash-test hook: tears the durability engine down **without**
    /// flushing — a pipelined engine abandons its un-fsynced tail, so
    /// the on-disk state is exactly what the last covering fsync left
    /// (the in-process stand-in for `kill -9` mid-stream). The server
    /// keeps running memory-only afterwards.
    #[doc(hidden)]
    pub fn kill_durability(&self) {
        if let Some(Durability::Pipelined { pipeline, .. }) = self.durability.lock().take() {
            pipeline.kill();
        }
    }

    /// A **consistent** `(log-for-audit, shard)` pair: the shard has
    /// applied exactly the blocks of the returned log. Because the
    /// stages are locked independently, the apply path can momentarily
    /// hold a block in the ledger that the shard has not absorbed yet;
    /// this retries until the [`ShardStage::applied_height`] watermark
    /// matches the log tip (instant on a settled cluster).
    pub fn audit_snapshot(&self) -> (TamperProofLog, AuthenticatedShard) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let log = self.log();
            let (shard, applied) = {
                let stage = self.shard.lock();
                (stage.shard.clone(), stage.applied_height)
            };
            if applied == log.next_height() || Instant::now() >= deadline {
                return (self.faulted(log), shard);
            }
            std::thread::yield_now();
        }
    }
}

/// Static per-server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// This server's index.
    pub idx: u32,
    /// Total number of servers.
    pub n_servers: u32,
    /// Which commitment protocol to run.
    pub protocol: CommitProtocol,
    /// Transactions per block (coordinator only).
    pub batch_size: usize,
    /// Idle time after which the coordinator terminates a partial batch.
    pub flush_interval: Duration,
    /// Phase timeout for vote/response collection.
    pub round_timeout: Duration,
    /// Run the repair plane (anti-entropy state transfer). Only
    /// meaningful under TFCommit — 2PC blocks are unsigned, so a
    /// transfer could not be verified.
    pub repair: bool,
    /// Broadcast saved snapshots to peers as checkpoint mirrors and
    /// persist received ones (see
    /// [`crate::recovery::PersistenceConfig::mirror_checkpoints`]).
    pub mirror_checkpoints: bool,
    /// Withhold client outcomes until a majority of servers reports the
    /// block durable (see
    /// [`crate::recovery::PersistenceConfig::quorum_acks`]).
    pub quorum_acks: bool,
    /// Rotate commit leadership deterministically by block height
    /// (`height % n_servers`) instead of pinning every round on
    /// [`COORDINATOR_IDX`]. TFCommit only; under rotation every server
    /// accepts end-transaction traffic and forwards queued work to the
    /// frontier leader ([`Message::EndTxnFwd`]) so no batch starves.
    pub rotate_leaders: bool,
    /// Liveness watchdog threshold: how long the frontier may sit still
    /// *with work outstanding* (live CoSi witnesses or queued end-txns)
    /// before the round-progress monitor declares a [`Stall`] and dumps
    /// the flight recorder. `Duration::ZERO` disables the watchdog.
    /// The main loop ticks at least every `flush_interval`, so
    /// detection lands within `stall_timeout + flush_interval` — with
    /// the default `stall_timeout == round_timeout`, well inside 2×
    /// the round timeout.
    pub stall_timeout: Duration,
}

/// The running server: message loop plus protocol handlers.
pub struct Server {
    state: Arc<ServerState>,
    endpoint: Endpoint,
    keypair: KeyPair,
    directory: Directory,
    partitioner: Partitioner,
    config: ServerConfig,
    /// Public keys of all servers, by index (the CoSi witness set).
    server_pks: Vec<PublicKey>,
    /// Coordinator: queued end-transaction requests.
    pending: Vec<PendingTxn>,
    /// Coordinator: when the oldest queued end-txn must be terminated
    /// even though the batch is not full. Deadline-based (not
    /// idle-based): a steady stream of execution traffic cannot starve
    /// block formation.
    batch_deadline: Option<Instant>,
    /// Authenticated messages awaiting dispatch: the transport is
    /// drained in bursts whose signatures are verified with **one**
    /// batched check ([`fides_net::verify_envelopes`]), and the decoded
    /// survivors queue here in arrival order.
    inbox: std::collections::VecDeque<(NodeId, Message, Option<TraceContext>)>,
    /// The in-flight anti-entropy repair, when this server detected a
    /// gap. While a task is active incoming decisions are buffered
    /// (never applied) so the verified transfer installs against a
    /// frozen base.
    repair_task: Option<RepairTask>,
    /// Rate limiter for repair-gap gossip queries.
    last_repair_query: Option<Instant>,
    /// Coordinator-only: outcomes withheld until a quorum of servers
    /// reports the block durable (`ServerConfig::quorum_acks`).
    quorum: Option<Arc<QuorumAcks>>,
    /// Per-peer liveness gauges (`net.peer.<i>.last_heard_ms`): set to
    /// milliseconds-on-the-process-epoch at every authenticated
    /// envelope receipt from that server.
    peer_last_heard: Vec<Arc<fides_telemetry::Gauge>>,
    /// Round-progress monitor state (see [`Server::tick_watchdog`]).
    watchdog: WatchdogTick,
    /// Coordinator: clients to notify per handle.
    running: bool,
}

#[derive(Clone, Debug)]
struct PendingTxn {
    handle: TxnHandle,
    client: NodeId,
    record: TxnRecord,
    /// The sampled trace context this end-txn arrived with (fides-trace
    /// — `None` for the unsampled 1−1/N of traffic). Survives
    /// forwarding; the round that terminates the transaction parents
    /// its spans under this context.
    trace: Option<TraceContext>,
    /// Rounds this transaction sat out because the leader's write
    /// watermarks already doom its read set (see
    /// [`Server::select_batch`]). Bounded by [`MAX_DOOMED_DEFERRALS`].
    deferrals: u32,
}

/// Round-progress watchdog state: when the frontier last moved, and
/// which stalled height was already reported (fire once per height).
struct WatchdogTick {
    last_frontier: u64,
    since: Instant,
    fired_for: Option<u64>,
}

/// The per-round causal context on the leader: every stage span of the
/// round hangs off `round_span`, which itself hangs off the sampled
/// client's root span.
#[derive(Clone, Copy)]
struct RoundTrace {
    ctx: TraceContext,
    round_span: u64,
    start_ns: u64,
}

impl RoundTrace {
    /// The context downstream messages (GetVote/Challenge/Decision) and
    /// spans carry: same trace, parented under the round span.
    fn child_ctx(&self) -> TraceContext {
        TraceContext {
            trace_id: self.ctx.trace_id,
            parent_span: self.round_span,
        }
    }
}

/// Blocks fetched per `RepairRequest` round trip.
const REPAIR_CHUNK: u32 = 64;

/// Cap on rounds parked in [`ExecState::gated_votes`] /
/// [`ExecState::gated_challenges`] (same bound as buffered decisions —
/// a Byzantine leader cannot balloon cohort memory with far-future
/// rounds).
const MAX_GATED_ROUNDS: usize = 1024;

/// How many rounds a doomed transaction (read set already overwritten
/// per the leader's write watermarks) may be held out of clean batches
/// before it is flushed into a dedicated abort round anyway.
const MAX_DOOMED_DEFERRALS: u32 = 4;

/// Minimum spacing between repair-gap gossip broadcasts.
const REPAIR_QUERY_GAP: Duration = Duration::from_millis(100);

/// One anti-entropy repair attempt: the staging area for blocks (and
/// possibly a checkpoint) fetched from `peer`, verified as a whole
/// before any byte reaches live state.
#[derive(Debug)]
struct RepairTask {
    /// The peer currently serving the transfer.
    peer: u32,
    /// Height the staged run starts at (this server's frozen tip, or
    /// the transferred checkpoint's height).
    base_height: u64,
    /// The hash the first staged block must link to (own verified tip,
    /// or the checkpoint's recorded tip hash).
    base_tip: Digest,
    /// A transferred checkpoint of this server's own shard, staged when
    /// peers pruned below `base_height` (verified internally on
    /// receipt; cross-checked against co-signed roots at install).
    checkpoint: Option<ShardSnapshot>,
    /// Blocks staged so far, consecutive from `base_height`.
    staged: Vec<Block>,
    /// The tip to reach (grows if the serving peer advances).
    target: u64,
    /// Peers that failed or refused this repair (tried and excluded).
    excluded: HashSet<u32>,
    /// Whether a checkpoint was already requested from `peer`.
    asked_checkpoint: bool,
    /// Last time `peer` responded (drives the unresponsive-peer
    /// retarget).
    last_activity: Instant,
    /// When the gap was first detected (spans retargets; feeds the
    /// `repair.duration_ns` histogram at install).
    started: Instant,
}

/// Coordinator-side quorum-durable outcome gate: client outcomes for a
/// block are released only once `quorum` distinct servers (the
/// coordinator included) report the block fsync-durable. Shared with
/// the WAL writer thread, whose ordered-ack callback records the
/// coordinator's own durability.
struct QuorumAcks {
    quorum: usize,
    sender: EndpointSender,
    keypair: KeyPair,
    from: NodeId,
    inner: parking_lot::Mutex<QuorumInner>,
}

#[derive(Default)]
struct QuorumInner {
    /// Outcome payloads withheld per height.
    pending: HashMap<u64, Vec<(NodeId, Vec<u8>)>>,
    /// Servers whose copy of each height is durable.
    acks: HashMap<u64, HashSet<u32>>,
}

impl QuorumAcks {
    /// Registers a block's withheld outcomes (coordinator thread, after
    /// the decision broadcast and before any `Durable` message for the
    /// height can be dispatched).
    fn register(&self, height: u64, payloads: Vec<(NodeId, Vec<u8>)>) {
        let mut inner = self.inner.lock();
        inner.pending.insert(height, payloads);
        self.release_if_ready(&mut inner, height);
    }

    /// Records that `server`'s copy of `height` is durable, releasing
    /// the withheld outcomes once the quorum is reached.
    fn record(&self, height: u64, server: u32) {
        let mut inner = self.inner.lock();
        inner.acks.entry(height).or_default().insert(server);
        // Bound stale entries: acks from rounds that never registered
        // outcomes, and withheld payloads whose quorum can no longer
        // realistically arrive (their clients timed out long ago).
        if height > 4096 {
            let floor = height - 4096;
            inner.acks.retain(|h, _| *h >= floor);
            inner.pending.retain(|h, _| *h >= floor);
        }
        self.release_if_ready(&mut inner, height);
    }

    fn release_if_ready(&self, inner: &mut QuorumInner, height: u64) {
        let ready = inner
            .acks
            .get(&height)
            .is_some_and(|acks| acks.len() >= self.quorum)
            && inner.pending.contains_key(&height);
        if !ready {
            return;
        }
        let payloads = inner.pending.remove(&height).expect("checked");
        inner.acks.remove(&height);
        for (client, payload) in payloads {
            self.sender
                .send(Envelope::sign(&self.keypair, self.from, client, payload));
        }
    }
}

/// The coordinator index (the "designated server", §4.1).
pub const COORDINATOR_IDX: u32 = 0;

/// The commit leader for block `height`: `height % n_servers` under
/// rotating leadership ([`ServerConfig::rotate_leaders`]), the fixed
/// [`COORDINATOR_IDX`] otherwise. Clients use this to aim end-txn
/// traffic at the server that will form the next block; a miss is
/// harmless (the receiver forwards via [`Message::EndTxnFwd`]).
pub fn leader_for_height(height: u64, n_servers: u32, rotate: bool) -> u32 {
    if rotate {
        (height % n_servers.max(1) as u64) as u32
    } else {
        COORDINATOR_IDX
    }
}

/// Computes the node id of server `idx` (servers occupy the low id
/// range).
pub fn server_node(idx: u32) -> NodeId {
    NodeId::new(idx)
}

/// Node id of client `idx`.
pub fn client_node(idx: u32) -> NodeId {
    NodeId::new(1 << 20 | idx)
}

/// Node id of the harness/admin endpoint (sends `Flush`/`Shutdown`).
pub fn admin_node() -> NodeId {
    NodeId::new(u32::MAX)
}

impl Server {
    /// Builds a server around pre-constructed state. Returns the shared
    /// state handle for the harness/auditor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: ServerConfig,
        shard: AuthenticatedShard,
        behavior: Behavior,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
    ) -> (Server, Arc<ServerState>) {
        let state = ServerState::new(config.idx, shard, behavior);
        Server::from_state(
            config,
            state,
            endpoint,
            keypair,
            directory,
            partitioner,
            server_pks,
        )
    }

    /// Builds a server around an explicit [`ServerState`] — the restart
    /// path, where the state (log, shard, `last_committed`, durability
    /// handles) comes out of [`crate::recovery::recover_server`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_state(
        config: ServerConfig,
        state: ServerState,
        endpoint: Endpoint,
        keypair: KeyPair,
        directory: Directory,
        partitioner: Partitioner,
        server_pks: Vec<PublicKey>,
    ) -> (Server, Arc<ServerState>) {
        let state = Arc::new(state);
        // Attach the metric handles the WAL writer thread records into
        // (fsync latency, batch size, queue depth) before any traffic.
        if let Some(Durability::Pipelined { pipeline, .. }) = state.durability.lock().as_ref() {
            pipeline.set_metrics(state.telemetry.pipeline_metrics());
        }
        // Under rotation every server leads some heights, so every
        // server needs the quorum tracker for the outcomes it withholds.
        let quorum = (config.quorum_acks
            && (config.idx == COORDINATOR_IDX || config.rotate_leaders))
            .then(|| {
                Arc::new(QuorumAcks {
                    quorum: (config.n_servers as usize / 2) + 1,
                    sender: endpoint.sender(),
                    keypair,
                    from: endpoint.node(),
                    inner: parking_lot::Mutex::new(QuorumInner::default()),
                })
            });
        let peer_last_heard = (0..config.n_servers)
            .map(|peer| {
                state
                    .telemetry
                    .registry
                    .gauge(&format!("net.peer.{peer}.last_heard_ms"))
            })
            .collect();
        let server = Server {
            state: Arc::clone(&state),
            endpoint,
            keypair,
            directory,
            partitioner,
            config,
            server_pks,
            pending: Vec::new(),
            batch_deadline: None,
            inbox: std::collections::VecDeque::new(),
            repair_task: None,
            last_repair_query: None,
            quorum,
            peer_last_heard,
            watchdog: WatchdogTick {
                last_frontier: 0,
                since: Instant::now(),
                fired_for: None,
            },
            running: true,
        };
        (server, state)
    }

    fn is_coordinator(&self) -> bool {
        self.config.idx == COORDINATOR_IDX
    }

    /// Whether deterministic leader rotation is active (TFCommit only —
    /// 2PC keeps the fixed designated coordinator).
    fn rotation_on(&self) -> bool {
        self.config.rotate_leaders && matches!(self.config.protocol, CommitProtocol::TfCommit)
    }

    /// The leader of the round at `height`.
    fn leader_of(&self, height: u64) -> u32 {
        leader_for_height(height, self.config.n_servers, self.rotation_on())
    }

    /// The height the next formed block will occupy — the frontier
    /// round. Takes the ledger lock; never call while holding a stage
    /// lock.
    fn frontier_height(&self) -> u64 {
        self.state.ledger.lock().log.next_height()
    }

    /// Whether this server leads the frontier round (and may therefore
    /// form the next batch).
    fn leads_frontier(&self) -> bool {
        if self.rotation_on() {
            self.leader_of(self.frontier_height()) == self.config.idx
        } else {
            self.is_coordinator()
        }
    }

    /// The server's message loop. Returns when a `Shutdown` message
    /// arrives or the network disappears.
    ///
    /// The coordinator terminates a round as soon as a full batch is
    /// pending, or when the oldest pending end-txn has waited
    /// `flush_interval` — a hard deadline, so block formation keeps
    /// pace even while execution traffic streams in continuously.
    pub fn run(mut self) {
        // Startup gossip: announce our tip so peers can tell us (and we
        // can tell them) about any gap — the rejoin path after a
        // restart, and a no-op on a fresh, level cluster.
        if self.repair_enabled() {
            self.broadcast_repair_query();
        }
        while self.running {
            let timeout = match self.batch_deadline {
                Some(deadline) if self.is_coordinator() || self.rotation_on() => deadline
                    .saturating_duration_since(Instant::now())
                    .min(self.config.flush_interval),
                _ => self.config.flush_interval,
            };
            match self.next_message(Instant::now() + timeout) {
                Ok((from, msg, trace)) => {
                    self.dispatch(from, msg, trace);
                    self.drive_rounds();
                    self.maybe_forward_pending();
                    self.drive_repair();
                }
                Err(fides_net::RecvError::Timeout) => {
                    self.drive_rounds();
                    self.maybe_forward_pending();
                    self.drive_repair();
                }
                Err(fides_net::RecvError::Disconnected) => break,
            }
            self.tick_watchdog();
        }
    }

    /// The round-progress liveness monitor, ticked every main-loop
    /// iteration (the loop wakes at least every `flush_interval`).
    ///
    /// A stall is declared when the frontier height has not moved for
    /// [`ServerConfig::stall_timeout`] **while work is outstanding** —
    /// live CoSi witnesses (votes cast whose decision never arrived)
    /// or queued end-transactions. Idle quiet is not a stall. On
    /// detection it records a structured [`Stall`] naming the stalled
    /// height and its leader, dumps a [`FlightRecorder`] (recent event
    /// ring + metrics snapshot + inflight round state) into the
    /// server's [`fides_telemetry::StallLog`], and fires once per
    /// stalled height — the trigger substrate for a timeout-driven
    /// view change (ROADMAP item 1).
    fn tick_watchdog(&mut self) {
        if self.config.stall_timeout.is_zero() {
            return;
        }
        let frontier = self.frontier_height();
        if frontier != self.watchdog.last_frontier {
            self.watchdog.last_frontier = frontier;
            self.watchdog.since = Instant::now();
            self.watchdog.fired_for = None;
            return;
        }
        let (witness_heights, gated) = {
            let exec = self.state.exec.lock();
            (
                exec.witnesses.keys().copied().collect::<Vec<u64>>(),
                exec.gated_votes.len() + exec.gated_challenges.len(),
            )
        };
        if witness_heights.is_empty() && self.pending.is_empty() {
            // Nothing outstanding: a still frontier is just quiet.
            self.watchdog.since = Instant::now();
            return;
        }
        let waited = self.watchdog.since.elapsed();
        if waited < self.config.stall_timeout || self.watchdog.fired_for == Some(frontier) {
            return;
        }
        self.watchdog.fired_for = Some(frontier);
        let stall = Stall {
            leader: self.leader_of(frontier) as u64,
            height: frontier,
            waited_ms: waited.as_millis() as u64,
        };
        self.state.telemetry.stalls.inc();
        self.state.telemetry.events.record(
            Level::Error,
            "watchdog",
            format!(
                "stall at height {} (leader {}, waited {} ms)",
                stall.height, stall.leader, stall.waited_ms
            ),
        );
        let mut notes = vec![
            format!("observer: server {}", self.config.idx),
            format!("live CoSi witnesses at heights {witness_heights:?}"),
            format!("queued end-txns: {}", self.pending.len()),
            format!("gated rounds (votes+challenges): {gated}"),
        ];
        if self.state.is_repairing() {
            notes.push("shard is repairing".to_string());
        }
        self.state.telemetry.stall_log.report(FlightRecorder {
            stall,
            at_ns: now_ns(),
            events: self.state.telemetry.events.snapshot(),
            metrics: self.state.telemetry.snapshot(),
            notes,
        });
    }

    /// The next authenticated message: pops the pre-verified inbox, or
    /// drains a burst from the transport and batch-verifies its
    /// signatures ([`fides_net::Endpoint::recv_verified_burst`] — one
    /// batched check with per-envelope fallback, so only forgeries
    /// drop; undecodable payloads are discarded, §3.1).
    fn next_message(
        &mut self,
        deadline: Instant,
    ) -> Result<(NodeId, Message, Option<TraceContext>), fides_net::RecvError> {
        /// Upper bound on one burst (bounds worst-case batch latency).
        const MAX_BURST: usize = 64;
        loop {
            if let Some(message) = self.inbox.pop_front() {
                return Ok(message);
            }
            let burst = self
                .endpoint
                .recv_verified_burst(deadline, &self.directory, MAX_BURST)?;
            for env in &burst {
                // Liveness gauge: any authenticated envelope from a
                // server peer counts as hearing from it.
                if let Some(gauge) = self.peer_last_heard.get(env.from.raw() as usize) {
                    gauge.set((now_ns() / 1_000_000) as i64);
                }
                if let Ok(msg) = Message::decode(&env.payload) {
                    self.inbox.push_back((env.from, msg, env.trace));
                }
            }
        }
    }

    /// Runs rounds while a full batch is queued or the batch deadline
    /// has passed (later end-txns may arrive during a round).
    ///
    /// A repairing coordinator drives no rounds: its log tip is behind
    /// the chain, so any block it formed would not extend its peers'
    /// logs. Pending end-txns wait (or get bounced as stale) until the
    /// repair installs.
    fn drive_rounds(&mut self) {
        if self.repair_task.is_some() || self.state.is_repairing() {
            return;
        }
        while self.running && self.leads_frontier() && !self.pending.is_empty() {
            let due = self.pending.len() >= self.config.batch_size
                || self
                    .batch_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline);
            if !due {
                return;
            }
            let before = self.pending.len();
            self.run_round();
            self.batch_deadline = if self.pending.is_empty() {
                None
            } else {
                // Leftovers start a fresh window.
                Some(Instant::now() + self.config.flush_interval)
            };
            if self.pending.len() >= before {
                break; // nothing progressed (all deferred)
            }
        }
    }

    /// Rotation liveness *and* batch concentration: a server holding
    /// queued end-txns it does not lead at the frontier (clients aim at
    /// an estimated leader and may race a leadership change) hands them
    /// to the frontier leader immediately. Forwarding eagerly — rather
    /// than waiting out the batch deadline — keeps the whole cluster's
    /// backlog concentrated at the one server about to run a round, so
    /// rotating blocks stay as full as fixed-coordinator blocks. A
    /// forward that races another leadership change simply hops again
    /// from the new recipient until it lands on the current leader.
    fn maybe_forward_pending(&mut self) {
        if !self.rotation_on()
            || self.pending.is_empty()
            || self.repair_task.is_some()
            || self.state.is_repairing()
        {
            return;
        }
        if !self.leads_frontier() {
            self.forward_pending();
        }
    }

    /// Sends every queued end-txn to the frontier leader as
    /// [`Message::EndTxnFwd`]. The forward carries the originating
    /// client's raw node id so the leader answers the client directly.
    fn forward_pending(&mut self) {
        let leader = self.leader_of(self.frontier_height());
        if leader == self.config.idx {
            return;
        }
        for txn in std::mem::take(&mut self.pending) {
            // A sampled txn's context rides the forward envelope, so
            // the eventual leader still parents the round under the
            // client's root span.
            self.send_traced(
                server_node(leader),
                &Message::EndTxnFwd {
                    client: txn.client.raw(),
                    handle: txn.handle,
                    record: txn.record,
                },
                txn.trace,
            );
        }
        self.batch_deadline = None;
    }

    fn send(&self, to: NodeId, msg: &Message) {
        self.send_traced(to, msg, None);
    }

    fn send_traced(&self, to: NodeId, msg: &Message, trace: Option<TraceContext>) {
        let env =
            Envelope::sign_traced(&self.keypair, self.endpoint.node(), to, msg.encode(), trace);
        self.endpoint.send(env);
    }

    fn broadcast_to_servers(&self, msg: &Message) {
        self.broadcast_to_servers_traced(msg, None);
    }

    fn broadcast_to_servers_traced(&self, msg: &Message, trace: Option<TraceContext>) {
        for s in 0..self.config.n_servers {
            if s != self.config.idx {
                self.send_traced(server_node(s), msg, trace);
            }
        }
    }

    fn dispatch(&mut self, from: NodeId, msg: Message, trace: Option<TraceContext>) {
        match msg {
            Message::Begin { txn } => self.handle_begin(txn),
            Message::Read { txn, key } => self.handle_read(from, txn, key),
            Message::ReadMany { txn, keys } => self.handle_read_many(from, txn, keys),
            Message::Write { txn, key, value } => self.handle_write(from, txn, key, value),
            Message::EndTxn { handle, record } => {
                // Rounds are driven by the main loop once a full batch
                // is pending.
                self.handle_end_txn(from, handle, record, trace);
            }
            Message::EndTxnFwd {
                client,
                handle,
                record,
            } if self.rotation_on() && from.raw() < self.config.n_servers => {
                self.enqueue_end_txn(NodeId::new(client), handle, record, trace);
            }
            Message::Flush if !self.pending.is_empty() && !self.state.is_repairing() => {
                if self.leads_frontier() {
                    self.run_round();
                } else if self.rotation_on() {
                    self.forward_pending();
                }
            }
            Message::GetVote { partial } => self.handle_get_vote(from, partial, trace),
            Message::Challenge {
                block,
                aggregate,
                challenge,
            } => self.handle_challenge(from, block, aggregate, challenge, trace),
            Message::Decision { block } => self.handle_decision_traced(block, trace),
            Message::TwoPcGetVote { partial } => self.handle_2pc_get_vote(from, partial),
            Message::TwoPcDecision { block } => self.handle_2pc_decision(block),
            Message::RepairQuery { next_height } => self.handle_repair_query(from, next_height),
            Message::RepairInfo {
                next_height,
                tip_hash,
                base_height,
                mirror_height,
            } => self.handle_repair_info(from, next_height, tip_hash, base_height, mirror_height),
            Message::RepairRequest { from: wanted, max } => {
                self.handle_repair_request(from, wanted, max);
            }
            Message::RepairBlocks {
                from: served_from,
                blocks,
                base_height,
                next_height,
            } => self.handle_repair_blocks(from, served_from, blocks, base_height, next_height),
            Message::RepairCheckpointRequest => self.handle_repair_checkpoint_request(from),
            Message::RepairCheckpoint { snapshot } => {
                self.handle_repair_checkpoint(from, snapshot.map(|s| *s));
            }
            Message::CheckpointMirror { snapshot } => {
                self.handle_checkpoint_mirror(from, *snapshot);
            }
            Message::Durable { height } => self.handle_durable(from, height),
            Message::SnapshotRead {
                req,
                shard,
                keys,
                min_covered,
                at_height,
            } => self.handle_snapshot_read(from, req, shard, keys, min_covered, at_height),
            Message::RootQuery { from: from_height } => self.handle_root_query(from, from_height),
            Message::Shutdown => self.running = false,
            // Responses to rounds we are not currently collecting for —
            // stale protocol traffic — are dropped.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Execution layer (§4.2.1).
    // ------------------------------------------------------------------

    fn handle_begin(&mut self, txn: TxnHandle) {
        self.state.exec.lock().write_buffers.entry(txn).or_default();
    }

    /// The batched read: one locked pass over the shard answers every
    /// key this transaction needs from this server, and the whole
    /// response costs one signature.
    fn handle_read_many(&mut self, from: NodeId, txn: TxnHandle, keys: Vec<Key>) {
        let stage = self.state.shard.lock();
        let items: Vec<crate::messages::ReadManyItem> = keys
            .into_iter()
            .map(|key| {
                let state = stage.shard.read(&key).map(|item| {
                    let value = if self.state.behavior().stale_read_keys.contains(&key) {
                        stale_value(&stage, &key, &item)
                    } else {
                        item.value.clone()
                    };
                    (value, item.rts, item.wts)
                });
                (key, state)
            })
            .collect();
        drop(stage);
        self.send(from, &Message::ReadManyResp { txn, items });
    }

    fn handle_read(&mut self, from: NodeId, txn: TxnHandle, key: Key) {
        let stage = self.state.shard.lock();
        let reply = match stage.shard.read(&key) {
            None => Message::ReadErr { txn, key },
            Some(item) => {
                let value = if self.state.behavior().stale_read_keys.contains(&key) {
                    stale_value(&stage, &key, &item)
                } else {
                    item.value.clone()
                };
                Message::ReadResp {
                    txn,
                    key,
                    value,
                    rts: item.rts,
                    wts: item.wts,
                }
            }
        };
        drop(stage);
        self.send(from, &reply);
    }

    fn handle_write(&mut self, from: NodeId, txn: TxnHandle, key: Key, value: Value) {
        let old = self
            .state
            .shard
            .lock()
            .shard
            .read(&key)
            .map(|item| (item.value, item.rts, item.wts));
        self.state
            .exec
            .lock()
            .write_buffers
            .entry(txn)
            .or_default()
            .push((key.clone(), value));
        self.send(from, &Message::WriteAck { txn, key, old });
    }

    fn handle_end_txn(
        &mut self,
        from: NodeId,
        handle: TxnHandle,
        record: TxnRecord,
        trace: Option<TraceContext>,
    ) {
        if !self.is_coordinator() && !self.rotation_on() {
            return; // only the designated coordinator terminates txns
        }
        self.enqueue_end_txn(from, handle, record, trace);
    }

    /// Queues a termination request (from a client directly, or relayed
    /// by a peer via [`Message::EndTxnFwd`]). Under rotation every
    /// server queues; a non-leader hands its queue to the frontier
    /// leader when the batch deadline passes.
    fn enqueue_end_txn(
        &mut self,
        client: NodeId,
        handle: TxnHandle,
        record: TxnRecord,
        trace: Option<TraceContext>,
    ) {
        let last = self.state.last_committed();
        if record.id <= last {
            // §4.3.1: "servers ignore any end transaction request with a
            // timestamp lower than the latest committed timestamp" — we
            // additionally tell the client so it can retry.
            self.send(client, &Message::EndTxnRejected { handle, hint: last });
            return;
        }
        if self.pending.iter().any(|p| p.handle == handle) {
            return; // forwarded duplicate of a request already queued
        }
        if self.pending.is_empty() {
            self.batch_deadline = Some(Instant::now() + self.config.flush_interval);
        }
        self.pending.push(PendingTxn {
            handle,
            client,
            record,
            trace,
            deferrals: 0,
        });
    }

    // ------------------------------------------------------------------
    // Cohort: TFCommit phases 2 and 4 (§4.3.1).
    // ------------------------------------------------------------------

    /// Phase 2 `<Vote, SchCommitment>` — shared by cohorts (message
    /// handler) and the coordinator (local call).
    ///
    /// OCC validation of large batches fans out per-transaction over
    /// the thread pool ([`occ::validate_batch_parallel`]), and the
    /// speculative root's Merkle work runs on the pool too — the
    /// "parallel Merkle/OCC execution" half of the commit pipeline.
    fn cohort_vote(&self, partial: &PartialBlock) -> (cosi::Commitment, Option<InvolvedVote>) {
        // Round id binds the nonce to (height, prev hash).
        let mut round_id = partial.height.to_be_bytes().to_vec();
        round_id.extend_from_slice(partial.prev_hash.as_bytes());
        let record_hint = partial.encode();
        let witness = Witness::commit(&self.keypair, &round_id, &record_hint);
        let commitment = witness.commitment();
        {
            let mut exec = self.state.exec.lock();
            exec.witnesses.insert(partial.height, witness);
            // Open rounds from this server's view: voted, not applied.
            self.state
                .telemetry
                .inflight_rounds
                .set(exec.witnesses.len() as i64);
        }

        let involved = self.involvement(&partial.txns);
        let involved_vote = if involved.contains(&self.config.idx) {
            if self.state.is_repairing() {
                // A repairing shard cannot validate reads or compute a
                // trustworthy speculative root — vote abort until the
                // verified transfer installs. The CoSi witness half
                // above still participates, so rounds not touching this
                // shard proceed at full speed.
                return (
                    commitment,
                    Some(InvolvedVote {
                        commit: false,
                        root: None,
                        failed: Vec::new(),
                    }),
                );
            }
            let mut stage = self.state.shard.lock();
            // Local OCC validation over this shard's slice (§4.3.1).
            let shard = &stage.shard;
            let failed = occ::validate_batch_parallel(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            });
            // Also enforce the sequential-log rule for the whole batch.
            let stale = partial.txns.iter().any(|t| t.id <= stage.last_committed);
            if failed.is_empty() && !stale {
                // Commit vote: compute the speculative root over all of
                // the block's writes that land on this shard.
                let writes = shard_writes(&partial.txns, &self.partitioner, self.config.idx);
                let root = stage.shard.speculative_root(&writes);
                drop(stage);
                self.state
                    .exec
                    .lock()
                    .sent_roots
                    .insert(partial.height, root);
                Some(InvolvedVote {
                    commit: true,
                    root: Some(root),
                    failed: Vec::new(),
                })
            } else {
                Some(InvolvedVote {
                    commit: false,
                    root: None,
                    failed,
                })
            }
        } else {
            None
        };
        (commitment, involved_vote)
    }

    fn handle_get_vote(
        &mut self,
        from: NodeId,
        partial: PartialBlock,
        trace: Option<TraceContext>,
    ) {
        if self.rotation_on() {
            if from.raw() != self.leader_of(partial.height) {
                return; // not that round's leader — ignore
            }
            let tip = self.frontier_height();
            if partial.height < tip {
                return; // stale round; the chain moved past it
            }
            if partial.height > tip {
                // The next leader raced our application of the previous
                // decision: park the round and vote right after
                // catch-up closes the gap.
                let mut exec = self.state.exec.lock();
                if exec.gated_votes.len() < MAX_GATED_ROUNDS {
                    exec.gated_votes.insert(partial.height, (from, partial));
                }
                return;
            }
        }
        let t0 = Instant::now();
        let start_ns = now_ns();
        let (commitment, involved) = self.cohort_vote(&partial);
        self.state
            .telemetry
            .stages
            .record(Stage::OccValidate, t0.elapsed().as_nanos() as u64);
        if let Some(ctx) = trace {
            // Cohort-side child of the leader's round span: where this
            // server spent the vote phase for the sampled transaction.
            let sink = &self.state.telemetry.spans;
            sink.close(
                ctx.trace_id,
                sink.next_id(),
                ctx.parent_span,
                "cohort.occ_validate",
                start_ns,
                partial.height,
            );
        }
        self.send(
            from,
            &Message::Vote {
                height: partial.height,
                commitment,
                involved,
            },
        );
    }

    /// Phase 4 `<null, SchResponse>` — the cohort-side checks of
    /// Lemma 5 / Scenario 2 followed by the Schnorr response.
    fn cohort_response(
        &self,
        block: &Block,
        aggregate: &cosi::Commitment,
        challenge: &fides_crypto::scalar::Scalar,
    ) -> Result<cosi::Response, Refusal> {
        // Fork guard: never co-sign a block at a height this log
        // already holds — a coordinator that restarted short (and has
        // not finished repairing) or is equivocating could otherwise
        // collect honest signatures for a second history.
        if block.height < self.state.ledger.lock().log.next_height() {
            return Err(Refusal::StaleHeight);
        }
        let involved = self.involvement(&block.txns);

        // Decision/roots consistency (§4.3.1 phase 4): a commit block
        // carries roots from *all* involved servers; an abort block has
        // at least one missing.
        let roots_present: HashSet<u32> = block.roots.iter().map(|r| r.server).collect();
        match block.decision {
            Decision::Commit => {
                if !involved.iter().all(|s| roots_present.contains(s)) {
                    return Err(Refusal::MissingRoots);
                }
            }
            Decision::Abort => {
                if !involved.is_empty() && involved.iter().all(|s| roots_present.contains(s)) {
                    return Err(Refusal::DecisionInconsistent);
                }
            }
        }

        let mut exec = self.state.exec.lock();
        // Own-root check (Scenario 2: a malicious coordinator storing an
        // incorrect root for a benign server is caught here).
        if let Some(sent) = exec.sent_roots.get(&block.height) {
            if block.decision == Decision::Commit && block.root_of(self.config.idx) != Some(*sent) {
                return Err(Refusal::RootMismatch);
            }
        }

        // Challenge recomputation (Lemma 5 Case 1: an equivocating
        // coordinator's challenge cannot correspond to both blocks).
        let expected = cosi::challenge(&aggregate.0, &block.signing_bytes());
        if expected != *challenge {
            return Err(Refusal::BadChallenge);
        }

        let witness = exec
            .witnesses
            .remove(&block.height)
            .ok_or(Refusal::BadChallenge)?;
        if self.state.behavior().corrupt_cosi_response {
            Ok(witness.respond_corrupt(challenge))
        } else {
            Ok(witness.respond(challenge))
        }
    }

    fn handle_challenge(
        &mut self,
        from: NodeId,
        block: Block,
        aggregate: cosi::Commitment,
        challenge: fides_crypto::scalar::Scalar,
        trace: Option<TraceContext>,
    ) {
        let height = block.height;
        if self.rotation_on() {
            if from.raw() != self.leader_of(height) {
                // Fork guard, rotation case: only `height % n` may
                // assemble the challenge for this height.
                self.state.telemetry.events.record(
                    Level::Warn,
                    "commit",
                    format!("refused to co-sign height {height}: WrongLeader"),
                );
                self.state
                    .ledger
                    .lock()
                    .refusals
                    .push((height, Refusal::WrongLeader));
                self.send(
                    from,
                    &Message::Response {
                        height,
                        result: Err(Refusal::WrongLeader),
                    },
                );
                return;
            }
            if height > self.frontier_height() {
                // Reordered ahead of the decision we have not applied
                // yet: park and replay after catch-up. (A height below
                // the tip falls through to the StaleHeight refusal.)
                let mut exec = self.state.exec.lock();
                if exec.gated_challenges.len() < MAX_GATED_ROUNDS {
                    exec.gated_challenges
                        .insert(height, (from, Box::new(block), aggregate, challenge));
                }
                return;
            }
        }
        let t0 = Instant::now();
        let start_ns = now_ns();
        let result = self.cohort_response(&block, &aggregate, &challenge);
        self.state
            .telemetry
            .stages
            .record(Stage::CosiAssemble, t0.elapsed().as_nanos() as u64);
        if let Some(ctx) = trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                ctx.trace_id,
                sink.next_id(),
                ctx.parent_span,
                "cohort.cosi_respond",
                start_ns,
                height,
            );
        }
        if let Err(refusal) = &result {
            self.state.telemetry.events.record(
                Level::Warn,
                "commit",
                format!("refused to co-sign height {height}: {refusal:?}"),
            );
            self.state.ledger.lock().refusals.push((height, *refusal));
        }
        self.send(from, &Message::Response { height, result });
    }

    /// Phase 5: verify the co-sign, then append and apply (§4.1 steps
    /// 6–7). Both commit and abort blocks are logged; only commit
    /// blocks update the datastore.
    ///
    /// Decisions that arrive **ahead** of this server's log tip
    /// (reordered delivery) are buffered unverified; once the gap
    /// closes, the whole consecutive run is verified with one
    /// [`cosi::verify_batch`] call in [`Server::catch_up`] instead of
    /// one full signature check per block.
    ///
    /// Takes the envelope's trace context when the decision arrived for
    /// a sampled round (buffered/replayed decisions lose it — only the
    /// direct path is attributed, which is the common case).
    fn handle_decision_traced(&mut self, block: Block, trace: Option<TraceContext>) {
        /// Upper bound on buffered future decisions (memory guard).
        const MAX_BUFFERED_DECISIONS: u64 = 1024;

        let tip = self.state.ledger.lock().log.next_height();
        // While a repair task is staging a transfer, every decision is
        // buffered — the verified install must land against a frozen
        // base, and the catch-up loop drains the buffer afterwards.
        if block.height > tip || self.repair_task.is_some() {
            let gapped = block.height > tip;
            if block.height >= tip && block.height - tip <= MAX_BUFFERED_DECISIONS {
                self.state
                    .exec
                    .lock()
                    .pending_decisions
                    .insert(block.height, block);
            }
            if gapped {
                // A gap: the decisions between our tip and this height
                // went missing (or we restarted short). Gossip our tip
                // so a peer's RepairInfo can start a transfer.
                self.maybe_query_repair();
            }
            return;
        }
        if !block
            .cosign
            .verify(&block.signing_bytes(), &self.server_pks)
        {
            // An unsigned/invalidly-signed block is never logged; the
            // anomaly surfaces at the clients and the audit.
            return;
        }
        self.apply_block_traced(block, CommitProtocol::TfCommit, trace);
        self.catch_up();
    }

    /// The catch-up loop: applies buffered decisions that have become
    /// consecutive with the log tip.
    ///
    /// The whole run is verified with a **single** batched
    /// collective-signature check; only if that fails does the loop
    /// fall back to per-block verification, applying valid blocks and
    /// stopping at the first invalid one (which cannot be linked into
    /// the chain, and whose absence will surface at the audit).
    fn catch_up(&mut self) {
        self.catch_up_decisions();
        self.drain_gated();
    }

    /// Rotation: replays `GetVote`/`Challenge` phases that were parked
    /// because they arrived ahead of the log tip, now that catch-up may
    /// have closed the gap. Entries the chain moved past are dropped.
    fn drain_gated(&mut self) {
        if !self.rotation_on() {
            return;
        }
        let tip = self.frontier_height();
        let (vote, challenge) = {
            let mut exec = self.state.exec.lock();
            exec.gated_votes.retain(|&h, _| h >= tip);
            exec.gated_challenges.retain(|&h, _| h >= tip);
            (
                exec.gated_votes.remove(&tip),
                exec.gated_challenges.remove(&tip),
            )
        };
        if let Some((from, partial)) = vote {
            self.handle_get_vote(from, partial, None);
        }
        if let Some((from, block, aggregate, scalar)) = challenge {
            self.handle_challenge(from, *block, aggregate, scalar, None);
        }
    }

    fn catch_up_decisions(&mut self) {
        if self.repair_task.is_some() {
            return; // frozen while a transfer is staging
        }
        loop {
            let run: Vec<Block> = {
                let tip = self.state.ledger.lock().log.next_height();
                let mut exec = self.state.exec.lock();
                let mut next = tip;
                let mut run = Vec::new();
                while let Some(block) = exec.pending_decisions.remove(&next) {
                    run.push(block);
                    next += 1;
                }
                // Drop stale entries at or below the tip.
                exec.pending_decisions.retain(|&h, _| h > tip);
                run
            };
            if run.is_empty() {
                return;
            }
            let records: Vec<Vec<u8>> = run.iter().map(|b| b.signing_bytes()).collect();
            let items: Vec<(&[u8], cosi::CollectiveSignature)> = records
                .iter()
                .map(Vec::as_slice)
                .zip(run.iter().map(|b| b.cosign))
                .collect();
            if cosi::verify_batch(&items, &self.server_pks) {
                for block in run {
                    self.apply_block(block, CommitProtocol::TfCommit);
                }
            } else {
                // Pinpoint the first invalid signature; the chain
                // cannot continue past it.
                let valid_prefix = items
                    .iter()
                    .position(|(record, sig)| !sig.verify(record, &self.server_pks))
                    .unwrap_or(items.len());
                let mut blocks = run.into_iter();
                for block in blocks.by_ref().take(valid_prefix) {
                    self.apply_block(block, CommitProtocol::TfCommit);
                }
                // Discard the invalid block, but re-buffer the blocks
                // behind it: a correctly signed copy of the bad height
                // may still arrive and let them apply.
                let _invalid = blocks.next();
                let mut exec = self.state.exec.lock();
                for block in blocks {
                    exec.pending_decisions.insert(block.height, block);
                }
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Cohort: 2PC baseline (§6.1).
    // ------------------------------------------------------------------

    fn handle_2pc_get_vote(&mut self, from: NodeId, partial: PartialBlock) {
        let involved = self.involvement(&partial.txns);
        let (commit, failed) = if involved.contains(&self.config.idx) {
            let stage = self.state.shard.lock();
            let shard = &stage.shard;
            let failed = occ::validate_batch_parallel(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            });
            (failed.is_empty(), failed)
        } else {
            (true, Vec::new())
        };
        self.send(
            from,
            &Message::TwoPcVote {
                height: partial.height,
                commit,
                failed,
            },
        );
    }

    fn handle_2pc_decision(&mut self, block: Block) {
        self.apply_block(block, CommitProtocol::TwoPhaseCommit);
    }

    // ------------------------------------------------------------------
    // Repair plane: serving side (any up-to-date server is a repair
    // peer) and requesting side (the gap-detection / staging / verified
    // install state machine). See `crate::repair` for the verification
    // obligations and `docs/repair.md` for the message flow.
    // ------------------------------------------------------------------

    /// Whether the repair plane runs on this server: TFCommit only
    /// (2PC blocks are unsigned, so a transfer could not be verified)
    /// and pointless without peers.
    fn repair_enabled(&self) -> bool {
        self.config.repair
            && self.config.protocol == CommitProtocol::TfCommit
            && self.config.n_servers > 1
    }

    /// Broadcasts our tip to every peer (rate-limited): the gossip that
    /// turns a height divergence into a repair in either direction.
    fn maybe_query_repair(&mut self) {
        if !self.repair_enabled() {
            return;
        }
        if self
            .last_repair_query
            .is_some_and(|at| at.elapsed() < REPAIR_QUERY_GAP)
        {
            return;
        }
        self.broadcast_repair_query();
    }

    fn broadcast_repair_query(&mut self) {
        self.last_repair_query = Some(Instant::now());
        let next_height = self.state.ledger.lock().log.next_height();
        self.broadcast_to_servers(&Message::RepairQuery { next_height });
    }

    /// Serving side of the gossip: answer with our tip, our servable
    /// floor and any mirror we hold for the requester — and, if the
    /// *requester* is ahead of us, treat the query as our own gap
    /// detection.
    fn handle_repair_query(&mut self, from: NodeId, their_next: u64) {
        if !self.repair_enabled() || from.raw() >= self.config.n_servers {
            return;
        }
        let (next_height, tip_hash, base_height) = {
            let ledger = self.state.ledger.lock();
            (
                ledger.log.next_height(),
                ledger.log.tip_hash(),
                ledger.log.base_height(),
            )
        };
        let mirror_height = self
            .state
            .repair
            .lock()
            .mirrors
            .get(&from.raw())
            .map(|snap| snap.height);
        self.send(
            from,
            &Message::RepairInfo {
                next_height,
                tip_hash,
                base_height,
                mirror_height,
            },
        );
        if their_next > next_height {
            self.begin_repair(from.raw(), their_next);
        }
    }

    fn handle_repair_info(
        &mut self,
        from: NodeId,
        next_height: u64,
        tip_hash: Digest,
        _base_height: u64,
        _mirror_height: Option<u64>,
    ) {
        if !self.repair_enabled() || from.raw() >= self.config.n_servers {
            return;
        }
        let (mine_next, mine_tip) = {
            let ledger = self.state.ledger.lock();
            (ledger.log.next_height(), ledger.log.tip_hash())
        };
        if next_height > mine_next {
            self.begin_repair(from.raw(), next_height);
            return;
        }
        if next_height == mine_next && tip_hash == mine_tip && self.repair_task.is_none() {
            // A peer at our exact tip: a provisionally adopted
            // checkpoint (snapshot recovered ahead of a torn WAL) is
            // now confirmed against the live chain.
            let mut repair = self.state.repair.lock();
            if repair.repairing {
                repair.repairing = false;
                repair.since = None;
            }
        }
    }

    /// Serving side of a block fetch. Ranges below the in-memory log's
    /// base are retried against the durability archive (pruned segments
    /// parked by [`fides_durability::SegmentArchive`]; inline engines
    /// only — under `SyncPolicy::Pipelined` the writer thread owns the
    /// log, and an archive-configured server holds the full history in
    /// memory anyway); a range gone from both is answered empty with
    /// our floor, steering the requester toward checkpoint transfer.
    fn handle_repair_request(&mut self, from: NodeId, wanted: u64, max: u32) {
        if !self.repair_enabled() || from.raw() >= self.config.n_servers {
            return;
        }
        let max = max.min(REPAIR_CHUNK) as usize;
        let (mut blocks, mut base_height, next_height) = {
            let ledger = self.state.ledger.lock();
            (
                ledger.log.blocks_from(wanted, max),
                ledger.log.base_height(),
                ledger.log.next_height(),
            )
        };
        if blocks.is_empty() && wanted < base_height {
            // The in-memory log is a suffix; pruned history may still be
            // readable from the archive directory.
            let durability = self.state.durability.lock();
            if let Some(Durability::Inline { log, .. }) = durability.as_ref() {
                if let Ok(Some(archived)) = log.read_archived() {
                    if let Some(first) = archived.first() {
                        base_height = base_height.min(first.height);
                        let skip = wanted.saturating_sub(first.height) as usize;
                        if skip < archived.len() {
                            let end = skip.saturating_add(max).min(archived.len());
                            blocks = archived[skip..end].to_vec();
                        }
                    }
                }
            }
        }
        if self.state.behavior().tamper_repair_blocks {
            if let Some(block) = blocks.first_mut() {
                block.decision = match block.decision {
                    Decision::Commit => Decision::Abort,
                    Decision::Abort => Decision::Commit,
                };
            }
        }
        self.send(
            from,
            &Message::RepairBlocks {
                from: wanted,
                blocks,
                base_height,
                next_height,
            },
        );
    }

    /// Serving side of checkpoint transfer: hand back the requester's
    /// own mirrored shard image, if we hold one.
    fn handle_repair_checkpoint_request(&mut self, from: NodeId) {
        if !self.repair_enabled() || from.raw() >= self.config.n_servers {
            return;
        }
        let mut snapshot = self.state.repair.lock().mirrors.get(&from.raw()).cloned();
        if self.state.behavior().tamper_repair_checkpoint {
            if let Some(snap) = &mut snapshot {
                if let Some(item) = snap.checkpoint.items.first_mut() {
                    if let Some(version) = item.versions.last_mut() {
                        version.1 = fides_store::types::Value::from_i64(i64::MAX);
                    }
                }
            }
        }
        self.send(
            from,
            &Message::RepairCheckpoint {
                snapshot: snapshot.map(Box::new),
            },
        );
    }

    /// Stores (and persists) a peer's checkpoint mirror. The mirror is
    /// only provisional custody — a repairer adopting it re-verifies it
    /// against the co-signed chain — but refusing internally
    /// inconsistent images early keeps garbage off the disk.
    fn handle_checkpoint_mirror(&mut self, from: NodeId, snapshot: ShardSnapshot) {
        let origin = from.raw();
        if !self.config.mirror_checkpoints
            || !self.repair_enabled()
            || origin >= self.config.n_servers
            || origin == self.config.idx
        {
            return;
        }
        if snapshot.restore_verified().is_err() {
            return;
        }
        {
            let mut repair = self.state.repair.lock();
            let newer = repair
                .mirrors
                .get(&origin)
                .is_none_or(|held| snapshot.height > held.height);
            if !newer {
                return;
            }
            repair.mirrors.insert(origin, snapshot.clone());
        }
        // The superseded mirror's read cache is stale now; the next
        // snapshot read rebuilds it from the new checkpoint (reads in
        // flight keep their Arc — exactly one co-signed root each).
        self.state.mirror_reads.lock().remove(&origin);
        let mut durability = self.state.durability.lock();
        match durability.as_mut() {
            None => {}
            Some(Durability::Inline { snapshots, .. }) => {
                snapshots
                    .save_mirror(origin, &snapshot)
                    .expect("mirror save failed");
            }
            Some(Durability::Pipelined { pipeline, .. }) => {
                pipeline.submit_mirror(origin, snapshot);
            }
        }
    }

    /// Quorum-durable acks: a cohort reported its copy of `height`
    /// fsync-durable.
    fn handle_durable(&mut self, from: NodeId, height: u64) {
        if from.raw() >= self.config.n_servers {
            return;
        }
        if let Some(quorum) = &self.quorum {
            quorum.record(height, from.raw());
        }
    }

    // ------------------------------------------------------------------
    // Verified read plane: proof-carrying snapshot reads served from
    // the live shard (owner) or from a verified checkpoint mirror of a
    // peer's shard (any holder) — read-only traffic never enters a
    // commit round. See `docs/reads.md`.
    // ------------------------------------------------------------------

    /// Coarse estimate of the remaining repair time, shipped in
    /// `ReadRefusal::Repairing` so clients retarget instead of burning
    /// their op-timeout against this server.
    fn repair_eta_ms(&self) -> u32 {
        match &self.repair_task {
            Some(task) => {
                let staged = task.base_height + task.staged.len() as u64;
                let remaining = task.target.saturating_sub(staged);
                // ~1 ms/block transfer+verify, floored at one gossip gap.
                (remaining.saturating_mul(1).clamp(100, 5_000)) as u32
            }
            None => 100,
        }
    }

    fn refuse_read(&self, to: NodeId, req: u64, reason: crate::messages::ReadRefusal) {
        self.state.telemetry.read_refusals.inc();
        self.state.telemetry.events.record(
            Level::Debug,
            "read",
            format!("refused snapshot read {req}: {reason:?}"),
        );
        self.send(to, &Message::SnapshotReadRefused { req, reason });
    }

    /// Serves a proof-carrying snapshot read: from the live shard when
    /// this server owns it, from a cached verified mirror otherwise.
    fn handle_snapshot_read(
        &mut self,
        from: NodeId,
        req: u64,
        shard_idx: u32,
        keys: Vec<Key>,
        min_covered: u64,
        at_height: Option<u64>,
    ) {
        use crate::messages::ReadRefusal;
        if self.config.protocol != CommitProtocol::TfCommit {
            // The 2PC baseline co-signs nothing and keeps no Merkle
            // tree: no proof a client could verify exists. Refusing is
            // the honest answer (serving would only earn an honest
            // server false TamperedRead evidence).
            self.refuse_read(from, req, ReadRefusal::NoSnapshot);
            return;
        }
        if self.state.is_repairing() {
            // A repairing shard cannot anchor trustworthy reads, and a
            // mirror held here may be what the repair itself is about.
            let eta_hint_ms = self.repair_eta_ms();
            self.refuse_read(from, req, ReadRefusal::Repairing { eta_hint_ms });
            return;
        }
        let ignore_bounds = self.state.behavior().ignore_read_bounds;
        let (root_height, covered, header, proof) = if shard_idx == self.config.idx {
            // Owner path: one shard-stage lock covers proof generation
            // and the anchor — a consistent (state, root) pair even
            // while the commit pipeline is mid-flight.
            let stage = self.state.shard.lock();
            let Some((root_height, header)) = stage.last_root.anchor() else {
                // Checkpoint bootstrap with no root-bearing block yet.
                self.refuse_read(from, req, ReadRefusal::TooStale { best_covered: 0 });
                return;
            };
            let covered = stage.applied_height;
            if covered < min_covered && !ignore_bounds {
                self.refuse_read(
                    from,
                    req,
                    ReadRefusal::TooStale {
                        best_covered: covered,
                    },
                );
                return;
            }
            if at_height.is_some_and(|h| root_height > h || h > covered) && !ignore_bounds {
                // The live state is not the state at `h` (a root landed
                // after it, or `h` is in the future).
                self.refuse_read(
                    from,
                    req,
                    ReadRefusal::TooStale {
                        best_covered: covered,
                    },
                );
                return;
            }
            let proof = stage.shard.prove_read(&keys);
            (root_height, covered, header, proof)
        } else {
            // Mirror path: serve a *peer's* shard from its verified
            // checkpoint mirror. The whole response derives from one
            // cached `Arc<MirrorReadState>` — a mirror superseded
            // mid-read cannot produce a torn (state, root) mix.
            let Some(mirror) = self.mirror_read_state(shard_idx) else {
                self.refuse_read(from, req, ReadRefusal::NoSnapshot);
                return;
            };
            if mirror.covered < min_covered && !ignore_bounds {
                self.refuse_read(
                    from,
                    req,
                    ReadRefusal::TooStale {
                        best_covered: mirror.covered,
                    },
                );
                return;
            }
            if at_height.is_some_and(|h| mirror.root_height > h || h > mirror.covered)
                && !ignore_bounds
            {
                self.refuse_read(
                    from,
                    req,
                    ReadRefusal::TooStale {
                        best_covered: mirror.covered,
                    },
                );
                return;
            }
            let proof = mirror.shard.prove_read(&keys);
            (
                mirror.root_height,
                mirror.covered,
                mirror.header.clone(),
                proof,
            )
        };

        // Byzantine switches: forge values/absences inside the response
        // (the genuine proofs then refute the forgery client-side).
        let mut proof = proof;
        let behavior = self.state.behavior();
        if !behavior.forge_read_values.is_empty() || !behavior.forge_read_absence.is_empty() {
            for (key, entry) in keys.iter().zip(proof.entries.iter_mut()) {
                if behavior.forge_read_values.contains(key) {
                    if let fides_store::ReadEntryProof::Present { value, .. } = entry {
                        *value = Value::from_i64(i64::MAX);
                    }
                }
                if behavior.forge_read_absence.contains(key) {
                    *entry = fides_store::ReadEntryProof::Absent(fides_store::AbsenceProof {
                        pred: None,
                        succ: fides_store::AbsenceSuccessor::Empty,
                    });
                }
            }
        }

        if shard_idx == self.config.idx {
            self.state.telemetry.reads_owner.inc();
        } else {
            self.state.telemetry.reads_mirror.inc();
        }
        self.send(
            from,
            &Message::SnapshotReadResp {
                req,
                shard: shard_idx,
                root_height,
                covered_height: covered,
                header: header.map(Box::new),
                proof: Box::new(proof),
            },
        );
    }

    /// The cached read-serving state for `origin`'s mirror, built (and
    /// cross-checked against the co-signed chain) on first use per
    /// checkpoint.
    fn mirror_read_state(&self, origin: u32) -> Option<Arc<MirrorReadState>> {
        let snapshot = self.state.repair.lock().mirrors.get(&origin).cloned()?;
        {
            let cache = self.state.mirror_reads.lock();
            if let Some(state) = cache.get(&origin) {
                if state.covered == snapshot.height {
                    return Some(Arc::clone(state));
                }
            }
        }
        // Build outside the cache lock (restore is expensive).
        let shard = snapshot.restore_verified().ok()?;
        // Anchor: the newest commit block below the checkpoint height
        // carrying the origin's root. The restored mirror must match it
        // — a forged-but-internally-consistent mirror is refused here
        // rather than served.
        let (root_height, header) = {
            let ledger = self.state.ledger.lock();
            let base = ledger.log.base_height();
            let mut found = None;
            let mut h = snapshot.height;
            while h > base {
                h -= 1;
                let block = ledger.log.get(h)?;
                if block.decision == Decision::Commit && block.root_of(origin).is_some() {
                    found = Some(Box::new(block.header()));
                    break;
                }
            }
            match found {
                Some(header) => (header.height + 1, Some(*header)),
                None if base == 0 => (0, None),
                // The anchoring history is pruned here: cannot serve.
                None => return None,
            }
        };
        if let Some(header) = &header {
            if header.root_of(origin) != Some(shard.root()) {
                return None;
            }
        }
        let state = Arc::new(MirrorReadState {
            covered: snapshot.height,
            root_height,
            header,
            shard,
        });
        self.state
            .mirror_reads
            .lock()
            .insert(origin, Arc::clone(&state));
        Some(state)
    }

    /// Serves recent co-signed headers (the pull half of the root
    /// announcement): walking down from the tip, every header that
    /// contributes a shard's newest commit root, until all shards are
    /// covered, the scan cap is hit, or `from` is passed.
    fn handle_root_query(&mut self, from: NodeId, from_height: u64) {
        const MAX_SCAN: usize = 256;
        const MAX_HEADERS: usize = 32;
        if self.config.protocol != CommitProtocol::TfCommit {
            // Unsigned (2PC) blocks yield no verifiable headers.
            self.send(
                from,
                &Message::RootAnnounce {
                    headers: Vec::new(),
                },
            );
            return;
        }
        let headers = {
            let ledger = self.state.ledger.lock();
            let tip = ledger.log.next_height();
            let base = ledger.log.base_height();
            let mut headers: Vec<BlockHeader> = Vec::new();
            let mut covered: HashSet<u32> = HashSet::new();
            let mut scanned = 0usize;
            let mut h = tip;
            while h > base && scanned < MAX_SCAN && headers.len() < MAX_HEADERS {
                h -= 1;
                scanned += 1;
                let Some(block) = ledger.log.get(h) else {
                    break;
                };
                let contributes = block.decision == Decision::Commit
                    && block.roots.iter().any(|r| !covered.contains(&r.server));
                // The tip header always ships (freshness evidence).
                if headers.is_empty() || contributes {
                    if block.decision == Decision::Commit {
                        covered.extend(block.roots.iter().map(|r| r.server));
                    }
                    headers.push(block.header());
                }
                if covered.len() >= self.config.n_servers as usize && h <= from_height {
                    break;
                }
            }
            headers
        };
        self.send(from, &Message::RootAnnounce { headers });
    }

    // ---- Requesting side ------------------------------------------------

    /// Starts a repair toward `target` served by `peer`, unless one is
    /// already running or we are not actually behind.
    fn begin_repair(&mut self, peer: u32, target: u64) {
        if !self.repair_enabled() || self.repair_task.is_some() || peer == self.config.idx {
            return;
        }
        let (tip, tip_hash) = {
            let ledger = self.state.ledger.lock();
            (ledger.log.next_height(), ledger.log.tip_hash())
        };
        if target <= tip {
            return;
        }
        {
            let mut repair = self.state.repair.lock();
            if !repair.repairing {
                repair.repairing = true;
                repair.since = Some(Instant::now());
            }
        }
        let mut excluded = HashSet::new();
        excluded.insert(self.config.idx);
        self.state.telemetry.repair_started.inc();
        self.state.telemetry.events.record(
            Level::Info,
            "repair",
            format!("gap detected: tip {tip}, target {target}, serving peer {peer}"),
        );
        self.repair_task = Some(RepairTask {
            peer,
            base_height: tip,
            base_tip: tip_hash,
            checkpoint: None,
            staged: Vec::new(),
            target,
            excluded,
            asked_checkpoint: false,
            last_activity: Instant::now(),
            started: Instant::now(),
        });
        self.send_repair_request();
    }

    fn send_repair_request(&mut self) {
        let Some(task) = &mut self.repair_task else {
            return;
        };
        let from = task.base_height + task.staged.len() as u64;
        let peer = server_node(task.peer);
        task.last_activity = Instant::now();
        self.send(
            peer,
            &Message::RepairRequest {
                from,
                max: REPAIR_CHUNK,
            },
        );
    }

    /// Requesting side: stage a served chunk, fall back to checkpoint
    /// transfer when the peer pruned the range, finalize when the
    /// target is reached.
    fn handle_repair_blocks(
        &mut self,
        from: NodeId,
        served_from: u64,
        blocks: Vec<Block>,
        peer_base: u64,
        peer_next: u64,
    ) {
        let Some(task) = &mut self.repair_task else {
            return;
        };
        if from.raw() != task.peer {
            return;
        }
        task.last_activity = Instant::now();
        let expected = task.base_height + task.staged.len() as u64;
        if served_from != expected {
            return; // stale response from an earlier staging position
        }
        task.target = task.target.max(peer_next);
        if blocks.is_empty() {
            if expected < peer_base {
                // The peer pruned this range: its own WAL floor is above
                // what we need. Fall back to a checkpoint of our shard.
                if task.checkpoint.is_none() && !task.asked_checkpoint {
                    task.asked_checkpoint = true;
                    let peer = server_node(task.peer);
                    self.send(peer, &Message::RepairCheckpointRequest);
                    return;
                }
                self.retarget_repair(true);
                return;
            }
            if expected >= task.target {
                self.finalize_repair();
            } else {
                // The peer claims a tip it cannot serve toward: move on.
                self.retarget_repair(true);
            }
            return;
        }
        // Cheap structural gate (full verification happens at install):
        // the chunk must be consecutive from the requested height.
        if blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.height != expected + i as u64)
        {
            self.retarget_repair(true);
            return;
        }
        self.state.telemetry.repair_blocks.add(blocks.len() as u64);
        self.state
            .telemetry
            .repair_bytes
            .add(blocks.iter().map(|b| b.encode().len() as u64).sum());
        task.staged.extend(blocks);
        if task.base_height + task.staged.len() as u64 >= task.target {
            self.finalize_repair();
        } else {
            self.send_repair_request();
        }
    }

    /// Requesting side of checkpoint transfer: verify the mirrored
    /// image internally, then restage the fetch from its height — the
    /// chain anchoring at install refutes a forged `tip_hash`.
    fn handle_repair_checkpoint(&mut self, from: NodeId, snapshot: Option<ShardSnapshot>) {
        let Some(task) = &mut self.repair_task else {
            return;
        };
        if from.raw() != task.peer || !task.asked_checkpoint {
            return;
        }
        task.last_activity = Instant::now();
        let Some(snapshot) = snapshot else {
            // An honest "I hold no mirror for you" — not evidence.
            self.retarget_repair(true);
            return;
        };
        if snapshot.restore_verified().is_err() {
            let peer = task.peer;
            self.record_repair_evidence(peer, RepairFault::BadCheckpoint);
            self.retarget_repair(true);
            return;
        }
        if snapshot.height <= task.base_height {
            // Older than what we already hold: useless here.
            self.retarget_repair(true);
            return;
        }
        task.target = task.target.max(snapshot.height);
        task.base_height = snapshot.height;
        task.base_tip = snapshot.tip_hash;
        self.state
            .telemetry
            .repair_bytes
            .add(snapshot.encode().len() as u64);
        task.checkpoint = Some(snapshot);
        task.staged.clear();
        if task.base_height >= task.target {
            self.finalize_repair();
        } else {
            self.send_repair_request();
        }
    }

    /// Verifies the complete staged transfer and installs it, or
    /// records evidence against the serving peer and retries elsewhere.
    fn finalize_repair(&mut self) {
        let Some(task) = self.repair_task.take() else {
            return;
        };
        let (base_shard, base_last_committed) = match &task.checkpoint {
            Some(snap) => (
                snap.restore_verified().expect("verified on receipt"),
                snap.last_committed,
            ),
            None => {
                let stage = self.state.shard.lock();
                (stage.shard.clone(), stage.last_committed)
            }
        };
        match verify_transfer(
            self.config.idx,
            &self.partitioner,
            &self.server_pks,
            self.config.protocol,
            crate::repair::TransferBase {
                height: task.base_height,
                tip: task.base_tip,
                shard: base_shard,
                last_committed: base_last_committed,
            },
            &task.staged,
        ) {
            Err(fault) => {
                // Attribution discipline: a base mismatch on an
                // *extension* transfer means our own (provisionally
                // adopted) anchor is wrong — the peer served genuinely
                // co-signed blocks and must not be accused. On a
                // checkpoint transfer the same fault proves the
                // checkpoint the peer served carries a forged tip hash.
                match fault {
                    RepairFault::BaseMismatch { .. } if task.checkpoint.is_none() => {}
                    RepairFault::BaseMismatch { .. } => {
                        self.record_repair_evidence(task.peer, RepairFault::BadCheckpoint);
                    }
                    fault => self.record_repair_evidence(task.peer, fault),
                }
                let mut excluded = task.excluded;
                excluded.insert(task.peer);
                self.restart_repair_task(excluded, task.target, task.started);
            }
            Ok(verified) => {
                // A checkpoint installed with no co-signed suffix on top
                // carries an unconfirmed tip hash: stay provisional
                // (repairing) until a peer at the same height confirms
                // it — see `handle_repair_info`.
                let provisional = task.checkpoint.is_some() && task.staged.is_empty();
                let install_start = Instant::now();
                self.install_transfer(&task, verified.shard, verified.last_committed);
                self.state
                    .telemetry
                    .repair_install_ns
                    .record_duration(install_start.elapsed());
                {
                    let mut repair = self.state.repair.lock();
                    repair.repairing = provisional;
                    repair.since = provisional.then(Instant::now);
                    repair.completions += 1;
                }
                self.state.telemetry.repair_completed.inc();
                self.state
                    .telemetry
                    .repair_duration_ns
                    .record_duration(task.started.elapsed());
                self.state.telemetry.events.record(
                    Level::Info,
                    "repair",
                    format!(
                        "installed verified transfer from peer {}: {} blocks to height {}{}",
                        task.peer,
                        task.staged.len(),
                        task.base_height + task.staged.len() as u64,
                        if provisional { " (provisional)" } else { "" },
                    ),
                );
                // Buffered live decisions apply now that the base moved.
                self.catch_up();
                // The chain may have advanced while we staged: re-gossip
                // so a remaining gap starts a fresh (short) repair.
                self.broadcast_repair_query();
            }
        }
    }

    /// Installs a verified transfer into the staged server state, one
    /// stage lock at a time (same order as the live apply path). For a
    /// checkpoint bootstrap the ledger becomes a suffix log, the WAL is
    /// reset to restart at the checkpoint height (which is persisted
    /// first), and the shard is replaced wholesale.
    fn install_transfer(
        &mut self,
        task: &RepairTask,
        shard: AuthenticatedShard,
        last_committed: Timestamp,
    ) {
        let new_tip = task.base_height + task.staged.len() as u64;
        // Stage 1 — ledger.
        {
            let mut ledger = self.state.ledger.lock();
            if task.checkpoint.is_some() {
                ledger.log = TamperProofLog::from_suffix(
                    task.base_height,
                    task.base_tip,
                    task.staged.clone(),
                )
                .expect("verified transfer chains");
            } else {
                for block in task.staged.iter().cloned() {
                    ledger
                        .log
                        .append(block)
                        .expect("verified transfer extends the log");
                }
            }
        }
        // Stage 2 — exec: round state below the new tip is stale; the
        // buffered decisions at or above it feed the catch-up loop.
        {
            let mut exec = self.state.exec.lock();
            exec.witnesses.retain(|h, _| *h >= new_tip);
            exec.sent_roots.retain(|h, _| *h >= new_tip);
            exec.pending_decisions.retain(|h, _| *h >= new_tip);
        }
        // Stage 3 — durability: checkpoint first (it vouches for the
        // discarded prefix), then the WAL restarts at its height and the
        // transferred blocks follow. With quorum acks on, a repaired
        // cohort also reports the transferred heights durable — the
        // coordinator may still be withholding outcomes for them.
        // Under rotation the repairer is a cohort for every height it
        // did not lead (per-height check below where the target varies).
        let quorum_cohort =
            self.config.quorum_acks && (self.rotation_on() || !self.is_coordinator());
        {
            let mut durability = self.state.durability.lock();
            match durability.as_mut() {
                None => {}
                Some(Durability::Inline { log, snapshots, .. }) => {
                    if let Some(snap) = &task.checkpoint {
                        snapshots
                            .save(snap)
                            .expect("checkpoint-adoption snapshot save failed");
                        log.reset_to(task.base_height).expect("WAL reset failed");
                    }
                    for block in &task.staged {
                        log.append_block(block).expect("repair WAL append failed");
                    }
                    log.sync().expect("repair WAL fsync failed");
                }
                Some(Durability::Pipelined { pipeline, .. }) => {
                    if let Some(snap) = &task.checkpoint {
                        pipeline.reset_to(snap.clone());
                    }
                    for block in &task.staged {
                        pipeline.submit_block(block);
                        if quorum_cohort && self.leader_of(block.height) != self.config.idx {
                            let height = block.height;
                            let sender = self.endpoint.sender();
                            let keypair = self.keypair;
                            let from = self.endpoint.node();
                            let leader = server_node(self.leader_of(height));
                            pipeline.on_durable(
                                height,
                                Box::new(move || {
                                    let msg = Message::Durable { height };
                                    sender.send(Envelope::sign(
                                        &keypair,
                                        from,
                                        leader,
                                        msg.encode(),
                                    ));
                                }),
                            );
                        }
                    }
                }
            }
            let inline_durable = !matches!(durability.as_ref(), Some(Durability::Pipelined { .. }));
            drop(durability);
            if quorum_cohort && inline_durable {
                for block in &task.staged {
                    if self.leader_of(block.height) == self.config.idx {
                        continue;
                    }
                    self.send(
                        server_node(self.leader_of(block.height)),
                        &Message::Durable {
                            height: block.height,
                        },
                    );
                }
            }
        }
        // Stage 4 — shard: swap in the verified replay and publish the
        // watermark. The read anchor is re-derived from the installed
        // log (the staged run may or may not carry this shard's root).
        {
            let (last_root, watermarks) = {
                let ledger = self.state.ledger.lock();
                (
                    RootProvenance::from_log(&ledger.log, self.config.idx),
                    watermarks_from_log(&ledger.log),
                )
            };
            let mut stage = self.state.shard.lock();
            stage.shard = shard;
            stage.last_committed = last_committed;
            stage.applied_height = new_tip;
            stage.last_root = last_root;
            stage.write_watermarks = watermarks;
        }
    }

    /// Retries the current repair with the next untried peer (dropping
    /// the staged transfer); with every peer tried, the task is
    /// abandoned and the rate-limited gossip loop starts over.
    fn retarget_repair(&mut self, exclude_current: bool) {
        let Some(task) = self.repair_task.take() else {
            return;
        };
        let mut excluded = task.excluded;
        if exclude_current {
            excluded.insert(task.peer);
        }
        self.restart_repair_task(excluded, task.target, task.started);
    }

    fn restart_repair_task(&mut self, excluded: HashSet<u32>, target: u64, started: Instant) {
        let (tip, tip_hash) = {
            let ledger = self.state.ledger.lock();
            (ledger.log.next_height(), ledger.log.tip_hash())
        };
        if target <= tip {
            // Caught up through other means; nothing left to repair.
            let mut repair = self.state.repair.lock();
            repair.repairing = false;
            repair.since = None;
            return;
        }
        let Some(peer) =
            (0..self.config.n_servers).find(|s| *s != self.config.idx && !excluded.contains(s))
        else {
            // Every peer tried and failed: leave the repairing flag up
            // (the audit grace clock keeps ticking) and let the gossip
            // loop retry from scratch.
            self.repair_task = None;
            return;
        };
        self.state.telemetry.repair_retargets.inc();
        self.state.telemetry.events.record(
            Level::Info,
            "repair",
            format!("retargeting repair to peer {peer} (target {target})"),
        );
        self.repair_task = Some(RepairTask {
            peer,
            base_height: tip,
            base_tip: tip_hash,
            checkpoint: None,
            staged: Vec::new(),
            target,
            excluded,
            asked_checkpoint: false,
            last_activity: Instant::now(),
            started,
        });
        self.send_repair_request();
    }

    /// Periodic repair upkeep from the message loop: drop an
    /// unresponsive serving peer, and keep gossiping while lagging with
    /// no active task.
    fn drive_repair(&mut self) {
        if !self.repair_enabled() {
            return;
        }
        if let Some(task) = &self.repair_task {
            if task.last_activity.elapsed() > self.config.round_timeout {
                self.retarget_repair(true);
            }
        } else if self.state.is_repairing() {
            self.maybe_query_repair();
        }
    }

    fn record_repair_evidence(&self, peer: u32, fault: RepairFault) {
        /// Hard cap: a retry loop against persistent Byzantine peers
        /// must not grow evidence without bound.
        const MAX_EVIDENCE: usize = 512;
        let evidence = RepairEvidence { peer, fault };
        let mut repair = self.state.repair.lock();
        // A stuck retry loop against the same Byzantine peer would
        // otherwise record the identical refutation every cycle.
        if repair.evidence.len() < MAX_EVIDENCE && repair.evidence.last() != Some(&evidence) {
            self.state.telemetry.events.record(
                Level::Warn,
                "repair",
                format!("refuted transfer from peer {peer}: {:?}", evidence.fault),
            );
            repair.evidence.push(evidence);
        }
    }

    // ------------------------------------------------------------------
    // Applying a terminated block.
    // ------------------------------------------------------------------

    /// The staged apply path. Each stage takes exactly one lock and
    /// releases it before the next — under pipelined durability the
    /// expensive steps (fsync, snapshot save, WAL pruning) run on the
    /// writer thread, off this server's message loop entirely:
    ///
    /// 1. **ledger** — dedupe + hash-chain append;
    /// 2. **exec** — drop the round's witness state;
    /// 3. **durability** — inline write-ahead (append + fsync on this
    ///    thread) or a pipeline submit (fsync later, acks deferred);
    /// 4. **shard** — apply committed writes with pool-parallel Merkle
    ///    updates, then publish `applied_height`;
    /// 5. **checkpoint** — capture a snapshot every `snapshot_interval`
    ///    blocks; the pipeline saves it only after the covering fsync.
    fn apply_block(&mut self, block: Block, protocol: CommitProtocol) {
        self.apply_block_traced(block, protocol, None);
    }

    /// [`Server::apply_block`] attributing the durability hand-off and
    /// the Merkle/apply segment to a sampled transaction's trace. The
    /// fsync itself is recorded by the WAL writer thread
    /// (`wal.fsync`, submit → covering fsync), so the queue wait is
    /// visible; the `commit.stage.merkle_update` span covers the rest
    /// of the apply.
    fn apply_block_traced(
        &mut self,
        block: Block,
        protocol: CommitProtocol,
        trace: Option<TraceContext>,
    ) {
        let apply_start = Instant::now();
        let apply_start_ns = now_ns();
        let durability_ns;
        let decision = block.decision;
        let max_ts = block.max_txn_ts();
        let height = block.height;
        let behavior = self.state.behavior();
        // A commit block carrying this shard's root becomes the read
        // plane's new trust anchor (abort blocks carry *speculative*
        // roots that were never applied — they must not move it).
        let read_anchor = (protocol == CommitProtocol::TfCommit
            && decision == Decision::Commit
            && block.root_of(self.config.idx).is_some())
        .then(|| Box::new(block.header()));

        // Stage 1 — ledger.
        let tip_hash = {
            let mut ledger = self.state.ledger.lock();
            if ledger.log.get(height).is_some() {
                return; // duplicate decision (e.g. coordinator's copy)
            }
            if ledger.log.append(block.clone()).is_err() {
                return; // does not extend our log; ignore
            }
            ledger.log.tip_hash()
        };

        // Stage 2 — exec cleanup.
        {
            let mut exec = self.state.exec.lock();
            exec.witnesses.remove(&height);
            exec.sent_roots.remove(&height);
            self.state
                .telemetry
                .inflight_rounds
                .set(exec.witnesses.len() as i64);
        }

        // Stage 3 — durability. Inline modes keep the write-ahead
        // invariant (block durable before the datastore moves); the
        // pipelined mode trades that for asynchronous group commit —
        // sound because recovery rebuilds purely from the WAL and
        // clients are acked only after the covering fsync.
        {
            let durability_start = Instant::now();
            let quorum_cohort =
                self.config.quorum_acks && self.leader_of(height) != self.config.idx;
            let mut report_now = quorum_cohort;
            let mut durability = self.state.durability.lock();
            match durability.as_mut() {
                None => {}
                Some(Durability::Inline { log, .. }) => {
                    log.append_block(&block)
                        .and_then(|()| log.sync())
                        .expect("write-ahead log append failed");
                }
                Some(Durability::Pipelined { pipeline, .. }) => {
                    pipeline.submit_block_traced(&block, trace);
                    if quorum_cohort {
                        // Report durability from the writer thread once
                        // the covering fsync lands (ordered acks).
                        report_now = false;
                        let sender = self.endpoint.sender();
                        let keypair = self.keypair;
                        let from = self.endpoint.node();
                        let leader = server_node(self.leader_of(height));
                        pipeline.on_durable(
                            height,
                            Box::new(move || {
                                let msg = Message::Durable { height };
                                sender.send(Envelope::sign(&keypair, from, leader, msg.encode()));
                            }),
                        );
                    }
                }
            }
            drop(durability);
            if report_now {
                // Inline durability fsynced above (and a memory-only
                // cohort has nothing a crash could take back): report
                // immediately.
                self.send(
                    server_node(self.leader_of(height)),
                    &Message::Durable { height },
                );
            }
            durability_ns = durability_start.elapsed().as_nanos() as u64;
        }

        // Stage 4 — shard.
        {
            let mut stage = self.state.shard.lock();
            if decision == Decision::Commit {
                for txn in &block.txns {
                    let reads: Vec<Key> = txn
                        .read_set
                        .iter()
                        .filter(|r| self.partitioner.owner(&r.key) == self.config.idx)
                        .map(|r| r.key.clone())
                        .collect();
                    let mut writes: Vec<(Key, Value)> = txn
                        .write_set
                        .iter()
                        .filter(|w| self.partitioner.owner(&w.key) == self.config.idx)
                        .map(|w| (w.key.clone(), w.new_value.clone()))
                        .collect();
                    // Fault: silently skip configured writes (§5
                    // Scenario 3).
                    if !behavior.skip_write_keys.is_empty() {
                        writes.retain(|(k, _)| !behavior.skip_write_keys.contains(k));
                    }
                    match protocol {
                        CommitProtocol::TfCommit => {
                            stage.shard.apply_commit(txn.id, &reads, &writes);
                        }
                        CommitProtocol::TwoPhaseCommit => {
                            stage.shard.apply_commit_store_only(txn.id, &reads, &writes);
                        }
                    }
                    // Batch-former doom filter: track the newest
                    // committed write per key across *all* shards.
                    for w in &txn.write_set {
                        let mark = stage
                            .write_watermarks
                            .entry(w.key.clone())
                            .or_insert(txn.id);
                        if txn.id > *mark {
                            *mark = txn.id;
                        }
                    }
                    // Clean the paper's write buffer for this txn.
                    // (Handles are client-side; buffers are
                    // garbage-collected lazily since the block only
                    // carries timestamps.)
                }
                if let Some(ts) = max_ts {
                    if ts > stage.last_committed {
                        stage.last_committed = ts;
                    }
                }
                // Fault: corrupt the datastore after applying (§5
                // Scenario 3).
                if let Some((key, value)) = behavior.corrupt_after_commit.clone() {
                    if self.partitioner.owner(&key) == self.config.idx {
                        if let Some(ts) = max_ts {
                            stage.shard.store_mut().corrupt_version(&key, ts, value);
                        }
                    }
                }
                if let Some(header) = read_anchor {
                    stage.last_root = RootProvenance::Header(header);
                }
            }
            stage.applied_height = height + 1;
        }

        // Stage 5 — periodic checkpoint: snapshot the shard (with the
        // block's writes applied) so recovery replays only the suffix
        // above it. Only under TFCommit: the 2PC baseline maintains no
        // Merkle tree, so there is no meaningful root to bind a
        // snapshot to — its recovery replays the full (unsigned) log
        // instead.
        let snapshot_interval = self
            .state
            .durability
            .lock()
            .as_ref()
            .map_or(0, Durability::snapshot_interval);
        let applied = height + 1;
        if protocol == CommitProtocol::TfCommit
            && snapshot_interval > 0
            && applied.is_multiple_of(snapshot_interval)
        {
            let snapshot = {
                let stage = self.state.shard.lock();
                ShardSnapshot::capture(&stage.shard, applied, tip_hash, stage.last_committed)
            };
            // Mirror the checkpoint to peers before pruning can bite:
            // once every server prunes its WAL below this height, the
            // mirrors are what keep *this* shard recoverable should our
            // disk die with the history (checkpoint state transfer).
            if self.config.mirror_checkpoints && self.repair_enabled() {
                self.broadcast_to_servers(&Message::CheckpointMirror {
                    snapshot: Box::new(snapshot.clone()),
                });
            }
            let mut durability = self.state.durability.lock();
            match durability.as_mut() {
                None => {}
                Some(Durability::Inline {
                    log,
                    snapshots,
                    prune_wal,
                    ..
                }) => {
                    snapshots
                        .save(&snapshot)
                        .expect("shard snapshot save failed");
                    if *prune_wal {
                        log.prune_below(applied).expect("WAL prune failed");
                    }
                }
                Some(Durability::Pipelined { pipeline, .. }) => {
                    // Saved by the writer thread after the covering
                    // fsync (and pruned there, if enabled).
                    pipeline.submit_snapshot(snapshot);
                }
            }
        }

        // Stage split for the round breakdown: the durability hand-off
        // (inline fsync, or pipeline submit — the asynchronous fsync
        // itself shows up as `durability.fsync_ns`) vs everything else
        // in the apply (ledger append, Merkle recomputation, exec
        // cleanup, checkpointing). Recorded on every role: the
        // coordinator's round laps deliberately skip this segment.
        let total_ns = apply_start.elapsed().as_nanos() as u64;
        self.state
            .telemetry
            .stages
            .record(Stage::WalFsync, durability_ns);
        self.state
            .telemetry
            .stages
            .record(Stage::MerkleUpdate, total_ns.saturating_sub(durability_ns));
        if let Some(ctx) = trace {
            let sink = &self.state.telemetry.spans;
            // The inline durability hand-off (pipelined mode's real
            // fsync is the writer thread's `wal.fsync` span instead).
            sink.record(Span {
                trace_id: ctx.trace_id,
                span_id: sink.next_id(),
                parent: ctx.parent_span,
                name: Stage::WalFsync.metric_name(),
                node: sink.tag(),
                start_ns: apply_start_ns,
                end_ns: apply_start_ns + durability_ns,
                aux: height,
            });
            sink.close(
                ctx.trace_id,
                sink.next_id(),
                ctx.parent_span,
                Stage::MerkleUpdate.metric_name(),
                apply_start_ns + durability_ns,
                height,
            );
        }
    }

    // ------------------------------------------------------------------
    // Coordinator (§4.1: "one designated server acts as the transaction
    // coordinator responsible for terminating all transactions").
    // ------------------------------------------------------------------

    /// Terminates the current pending batch with one protocol round.
    ///
    /// The round clock starts *before* batch selection so the six stage
    /// histograms ([`Stage`]) tile `round_nanos`: contiguous
    /// [`Stopwatch`] laps cover batch formation through outcome send.
    fn run_round(&mut self) {
        let start = Instant::now();
        let mut watch = Stopwatch::new();
        let round_start_ns = now_ns();
        let batch = self.select_batch();
        if batch.is_empty() {
            return;
        }
        // One sampled transaction makes the whole round traced: the
        // round span parents every stage span this leader records and
        // (via the traced broadcasts) every cohort span elsewhere.
        let round_trace = batch.iter().find_map(|p| p.trace).map(|ctx| RoundTrace {
            ctx,
            round_span: self.state.telemetry.spans.next_id(),
            start_ns: round_start_ns,
        });
        self.state
            .telemetry
            .stages
            .record(Stage::BatchForm, watch.lap_ns());
        let n_txns = batch.len() as u64;
        let height_before = self.state.ledger.lock().log.next_height();
        if let Some(rt) = round_trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                rt.ctx.trace_id,
                sink.next_id(),
                rt.round_span,
                Stage::BatchForm.metric_name(),
                round_start_ns,
                height_before,
            );
        }
        match self.config.protocol {
            CommitProtocol::TfCommit => self.run_tfcommit_round(batch, &mut watch, round_trace),
            CommitProtocol::TwoPhaseCommit => self.run_2pc_round(batch),
        }
        if let Some(rt) = round_trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                rt.ctx.trace_id,
                rt.round_span,
                rt.ctx.parent_span,
                "commit.round",
                rt.start_ns,
                height_before,
            );
        }
        let elapsed = start.elapsed();
        self.state.telemetry.rounds.inc();
        self.state.telemetry.rounds_led.inc();
        let mut ledger = self.state.ledger.lock();
        ledger.round_stats.rounds += 1;
        ledger.round_stats.round_nanos += elapsed.as_nanos();
        // Committed iff the round appended a commit block.
        let committed = ledger.log.next_height() > height_before
            && ledger
                .log
                .last()
                .is_some_and(|b| b.decision == Decision::Commit);
        if committed {
            ledger.round_stats.committed_txns += n_txns;
        } else {
            ledger.round_stats.aborted_txns += n_txns;
        }
    }

    /// Picks up to `batch_size` pending transactions, in timestamp
    /// order, skipping any that conflict (share a key) with an earlier
    /// selection — "a set of non-conflicting transactions" (§4.6).
    ///
    /// Transactions whose timestamp has fallen at or below
    /// `last_committed` while queued are bounced back to their clients
    /// for a fresh timestamp instead of entering the batch: one stale
    /// straggler would otherwise make every cohort vote abort for the
    /// **whole block** (§4.3.1's sequential-log rule), amplifying a
    /// single retry into a full batch of aborts under deep pipelining.
    fn select_batch(&mut self) -> Vec<PendingTxn> {
        let last_committed = self.state.last_committed();
        let stale: Vec<PendingTxn> = {
            let (stale, fresh) = self
                .pending
                .drain(..)
                .partition(|p| p.record.id <= last_committed);
            self.pending = fresh;
            stale
        };
        for p in &stale {
            self.send(
                p.client,
                &Message::EndTxnRejected {
                    handle: p.handle,
                    hint: last_committed,
                },
            );
        }
        self.pending.sort_by_key(|p| p.record.id);
        // Doom filter: a transaction whose read entry (key, wts) is
        // older than the newest committed write of that key is certain
        // to fail OCC at its owner — one such straggler makes every
        // cohort vote abort for the whole block. Keep doomed
        // transactions out of clean batches; they terminate through a
        // dedicated round of their own (which aborts and gives their
        // clients a properly co-signed abort outcome) once no clean
        // work is pending or they have deferred [`MAX_DOOMED_DEFERRALS`]
        // times.
        let (clean, mut doomed): (Vec<PendingTxn>, Vec<PendingTxn>) = {
            let stage = self.state.shard.lock();
            self.pending.drain(..).partition(|p| {
                !p.record.read_set.iter().any(|r| {
                    stage
                        .write_watermarks
                        .get(&r.key)
                        .is_some_and(|mark| *mark > r.wts)
                })
            })
        };
        let flush_doomed = !doomed.is_empty()
            && (clean.is_empty() || doomed.iter().any(|p| p.deferrals >= MAX_DOOMED_DEFERRALS));
        let (mut source, mut rest) = if flush_doomed {
            (doomed, clean)
        } else {
            for p in &mut doomed {
                p.deferrals += 1;
            }
            (clean, doomed)
        };
        let mut touched: HashSet<Key> = HashSet::new();
        let mut batch = Vec::new();
        for txn in source.drain(..) {
            let keys: Vec<Key> = txn
                .record
                .read_set
                .iter()
                .map(|r| r.key.clone())
                .chain(txn.record.write_set.iter().map(|w| w.key.clone()))
                .collect();
            let conflicts = keys.iter().any(|k| touched.contains(k));
            if batch.len() < self.config.batch_size && !conflicts {
                touched.extend(keys);
                batch.push(txn);
            } else {
                rest.push(txn);
            }
        }
        self.pending = rest;
        batch
    }

    fn run_tfcommit_round(
        &mut self,
        batch: Vec<PendingTxn>,
        watch: &mut Stopwatch,
        trace: Option<RoundTrace>,
    ) {
        let (height, prev_hash) = {
            let ledger = self.state.ledger.lock();
            (ledger.log.next_height(), ledger.log.tip_hash())
        };
        let partial = PartialBlock {
            height,
            txns: batch.iter().map(|p| p.record.clone()).collect(),
            prev_hash,
        };
        // Downstream envelopes carry the round span as parent, so the
        // cohort spans of a sampled round attach under it.
        let child_ctx = trace.map(|t| t.child_ctx());
        let mut stage_start_ns = now_ns();

        // Phase 1 <GetVote, SchAnnouncement>.
        self.broadcast_to_servers_traced(
            &Message::GetVote {
                partial: partial.clone(),
            },
            child_ctx,
        );
        // The coordinator is also a witness/cohort (§4.3.1 phase 2).
        let (own_commitment, own_involved) = self.cohort_vote(&partial);

        // Phase 2: collect votes from every other server.
        let mut commitments: Vec<Option<cosi::Commitment>> =
            vec![None; self.config.n_servers as usize];
        let mut involved_votes: Vec<Option<InvolvedVote>> =
            vec![None; self.config.n_servers as usize];
        commitments[self.config.idx as usize] = Some(own_commitment);
        involved_votes[self.config.idx as usize] = own_involved;

        let ok = self.collect_votes(height, &mut commitments, &mut involved_votes);
        self.state
            .telemetry
            .stages
            .record(Stage::OccValidate, watch.lap_ns());
        if let Some(rt) = trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                rt.ctx.trace_id,
                sink.next_id(),
                rt.round_span,
                Stage::OccValidate.metric_name(),
                stage_start_ns,
                height,
            );
        }
        stage_start_ns = now_ns();
        if ok && self.state.behavior().stall_after_votes {
            // Fault hook for the liveness watchdog tests: the leader
            // collects every vote, then goes silent — no Challenge, no
            // Decision, no rejection. Cohorts hold their CoSi witnesses
            // open forever; their round-progress watchdogs must fire.
            self.state.telemetry.events.record(
                Level::Warn,
                "commit",
                format!("stall_after_votes: abandoning round at height {height}"),
            );
            return;
        }
        if !ok {
            // Timed-out round (crashed cohort): TFCommit is blocking
            // (§4.3.1); we surface the failure to the clients instead of
            // blocking forever.
            self.state.telemetry.round_timeouts.inc();
            self.state.telemetry.events.record(
                Level::Warn,
                "commit",
                format!("vote collection timed out at height {height}"),
            );
            self.reject_batch(&batch);
            return;
        }

        // Phase 3 <null, SchChallenge>: form the decision and the block.
        let all_commit = involved_votes.iter().flatten().all(|v| v.commit);
        let decision = if all_commit {
            Decision::Commit
        } else {
            Decision::Abort
        };
        let mut builder = BlockBuilder::new(height, prev_hash)
            .txns(partial.txns.clone())
            .decision(decision);
        for (s, vote) in involved_votes.iter().enumerate() {
            if let Some(InvolvedVote {
                commit: true,
                root: Some(root),
                ..
            }) = vote
            {
                builder = builder.root(ShardRoot {
                    server: s as u32,
                    root: *root,
                });
            }
        }
        let mut block = builder.build_unsigned();

        // Fault: replace a benign server's root (§5 Scenario 2).
        let fake_root_for = self.state.behavior().fake_root_for;
        if let Some(victim) = fake_root_for {
            for r in &mut block.roots {
                if r.server == victim {
                    r.root = Digest::new([0xEE; 32]);
                }
            }
        }

        let all_commitments: Vec<cosi::Commitment> =
            commitments.iter().map(|c| c.expect("collected")).collect();
        let aggregate =
            cosi::Commitment(cosi::aggregate_commitments(all_commitments.iter().copied()));
        let challenge = cosi::challenge(&aggregate.0, &block.signing_bytes());

        // Fault: equivocate (Lemma 5 Case 1) — commit block to even
        // cohorts, abort block to odd cohorts, same challenge.
        let equivocate = self.state.behavior().equivocate_decision;
        if equivocate {
            let alt = Block {
                decision: Decision::Abort,
                roots: Vec::new(),
                ..block.clone()
            };
            for s in 0..self.config.n_servers {
                if s == self.config.idx {
                    continue;
                }
                let which = if s % 2 == 0 {
                    block.clone()
                } else {
                    alt.clone()
                };
                self.send(
                    server_node(s),
                    &Message::Challenge {
                        block: which,
                        aggregate,
                        challenge,
                    },
                );
            }
        } else {
            self.broadcast_to_servers_traced(
                &Message::Challenge {
                    block: block.clone(),
                    aggregate,
                    challenge,
                },
                child_ctx,
            );
        }

        // The coordinator's own response.
        let own_response = self.cohort_response(&block, &aggregate, &challenge);

        // Phase 4: collect responses.
        let mut responses: Vec<Option<Result<cosi::Response, Refusal>>> =
            vec![None; self.config.n_servers as usize];
        responses[self.config.idx as usize] = Some(own_response);
        if !self.collect_responses(height, &mut responses) {
            self.state
                .telemetry
                .stages
                .record(Stage::CosiAssemble, watch.lap_ns());
            self.state.telemetry.round_timeouts.inc();
            self.state.telemetry.events.record(
                Level::Warn,
                "commit",
                format!("response collection timed out at height {height}"),
            );
            self.reject_batch(&batch);
            return;
        }

        // Phase 5 <Decision, null>: assemble the collective signature.
        let mut ok_responses = Vec::with_capacity(self.config.n_servers as usize);
        let mut refused = false;
        for r in responses.iter().flatten() {
            match r {
                Ok(resp) => ok_responses.push(*resp),
                Err(_) => refused = true,
            }
        }
        let mut cosign_valid = false;
        let cosign = if refused {
            // At least one cohort refused: no valid signature can exist.
            fides_crypto::cosi::CollectiveSignature::placeholder()
        } else {
            let sig = fides_crypto::cosi::CollectiveSignature::assemble(
                aggregate.0,
                ok_responses.iter().copied(),
            );
            // Lemma 4: an invalid aggregate lets the coordinator identify
            // the precise culprits by checking partial signatures.
            if sig.verify(&block.signing_bytes(), &self.server_pks) {
                cosign_valid = true;
            } else {
                let resp_list: Vec<cosi::Response> = ok_responses.clone();
                let culprits: Vec<u32> = cosi::identify_invalid_responses(
                    &challenge,
                    &all_commitments,
                    &resp_list,
                    &self.server_pks,
                )
                .into_iter()
                .map(|i| i as u32)
                .collect();
                self.state
                    .ledger
                    .lock()
                    .cosi_culprits
                    .push((height, culprits));
            }
            sig
        };

        let signed = Block { cosign, ..block };
        self.broadcast_to_servers_traced(
            &Message::Decision {
                block: signed.clone(),
            },
            child_ctx,
        );
        self.state
            .telemetry
            .stages
            .record(Stage::CosiAssemble, watch.lap_ns());
        if let Some(rt) = trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                rt.ctx.trace_id,
                sink.next_id(),
                rt.round_span,
                Stage::CosiAssemble.metric_name(),
                stage_start_ns,
                height,
            );
        }
        if cosign_valid {
            // The coordinator verified this signature when assembling
            // it; re-running the check in `handle_decision` would be
            // pure waste on the hot path.
            self.apply_block_traced(signed.clone(), CommitProtocol::TfCommit, child_ctx);
            self.catch_up();
        } else {
            self.handle_decision_traced(signed.clone(), child_ctx);
        }
        // The apply segment was recorded from inside `apply_block`
        // (MerkleUpdate + WalFsync); restart the lap clock so the
        // outcome stage does not double-count it.
        let _ = watch.lap_ns();
        stage_start_ns = now_ns();

        // Figure 5 step 8: respond to the clients. Under pipelined
        // durability the outcome is the commit acknowledgement, so it
        // is deferred until the WAL writer's fsync covers this height
        // (ordered acks — the client never observes a commit a crash
        // could undo); the coordinator itself moves straight on to the
        // next round. An invalidly signed block was never logged (and
        // never reaches the WAL), so its outcome — which the clients
        // will classify as an anomaly — goes out immediately.
        self.send_outcomes(height, &batch, &signed, cosign_valid);
        self.state
            .telemetry
            .stages
            .record(Stage::OutcomeSend, watch.lap_ns());
        if let Some(rt) = trace {
            let sink = &self.state.telemetry.spans;
            sink.close(
                rt.ctx.trace_id,
                sink.next_id(),
                rt.round_span,
                Stage::OutcomeSend.metric_name(),
                stage_start_ns,
                height,
            );
        }
    }

    /// Sends `Outcome` messages for a terminated batch — one message
    /// per **client** (covering all of that client's transactions in
    /// the block).
    ///
    /// With `durable_when_fsynced` under pipelined durability, the
    /// sends run from the WAL writer thread once the covering fsync
    /// lands; otherwise (inline durability, no durability, or a block
    /// that was never applied — e.g. an invalid collective signature
    /// the clients must see to detect the anomaly) they go out
    /// immediately.
    fn send_outcomes(
        &self,
        height: u64,
        batch: &[PendingTxn],
        signed: &Block,
        durable_when_fsynced: bool,
    ) {
        // Group the batch's handles by client, preserving order.
        let mut per_client: Vec<(NodeId, Vec<TxnHandle>)> = Vec::new();
        for p in batch {
            match per_client.iter_mut().find(|(c, _)| *c == p.client) {
                Some((_, handles)) => handles.push(p.handle),
                None => per_client.push((p.client, vec![p.handle])),
            }
        }
        // Encode the block once; every client's payload reuses the
        // bytes (the block is the payload's dominant cost at batch
        // sizes, and re-encoding it per client serialized the whole
        // fan-out on the leader).
        let block_bytes = signed.encode();
        let payload_for =
            |handles: &[TxnHandle]| crate::messages::encode_outcome_payload(handles, &block_bytes);
        // Quorum-durable acks: withhold the outcomes until a majority
        // of servers (this coordinator included) reports the block
        // fsync-durable — an acknowledged commit then survives the loss
        // of any minority of disks, not just a coordinator crash.
        if durable_when_fsynced {
            if let Some(quorum) = &self.quorum {
                let payloads: Vec<(NodeId, Vec<u8>)> = per_client
                    .into_iter()
                    .map(|(client, handles)| {
                        let payload = payload_for(&handles);
                        (client, payload)
                    })
                    .collect();
                quorum.register(height, payloads);
                // The coordinator's own durability vote.
                let durability = self.state.durability.lock();
                match durability.as_ref() {
                    Some(Durability::Pipelined { pipeline, .. }) => {
                        let quorum = Arc::clone(quorum);
                        let own = self.config.idx;
                        pipeline.on_durable(height, Box::new(move || quorum.record(height, own)));
                    }
                    // Inline engines fsynced on the apply path; a
                    // memory-only coordinator has nothing to lose.
                    _ => quorum.record(height, self.config.idx),
                }
                return;
            }
        }
        let durability = self.state.durability.lock();
        if let Some(Durability::Pipelined { pipeline, .. }) = durability.as_ref() {
            if durable_when_fsynced {
                let sender = self.endpoint.sender();
                let keypair = self.keypair;
                let from = self.endpoint.node();
                let messages: Vec<(NodeId, Vec<u8>)> = per_client
                    .into_iter()
                    .map(|(client, handles)| {
                        let payload = payload_for(&handles);
                        (client, payload)
                    })
                    .collect();
                pipeline.on_durable(
                    height,
                    Box::new(move || {
                        for (client, payload) in messages {
                            sender.send(Envelope::sign(&keypair, from, client, payload));
                        }
                    }),
                );
                return;
            }
        }
        drop(durability);
        for (client, handles) in per_client {
            let payload = payload_for(&handles);
            self.endpoint.send(Envelope::sign(
                &self.keypair,
                self.endpoint.node(),
                client,
                payload,
            ));
        }
    }

    fn run_2pc_round(&mut self, batch: Vec<PendingTxn>) {
        let (height, prev_hash) = {
            let ledger = self.state.ledger.lock();
            (ledger.log.next_height(), ledger.log.tip_hash())
        };
        let partial = PartialBlock {
            height,
            txns: batch.iter().map(|p| p.record.clone()).collect(),
            prev_hash,
        };
        self.broadcast_to_servers(&Message::TwoPcGetVote {
            partial: partial.clone(),
        });

        // Own vote.
        let own_commit = {
            let stage = self.state.shard.lock();
            let shard = &stage.shard;
            occ::validate_batch_parallel(&partial.txns, |key| {
                if self.partitioner.owner(key) == self.config.idx {
                    shard.read(key)
                } else {
                    None
                }
            })
            .is_empty()
        };

        let mut votes: Vec<Option<bool>> = vec![None; self.config.n_servers as usize];
        votes[self.config.idx as usize] = Some(own_commit);
        if !self.collect_2pc_votes(height, &mut votes) {
            self.reject_batch(&batch);
            return;
        }
        let decision = if votes.iter().flatten().all(|c| *c) {
            Decision::Commit
        } else {
            Decision::Abort
        };
        let block = BlockBuilder::new(height, prev_hash)
            .txns(partial.txns)
            .decision(decision)
            .build_unsigned();
        self.broadcast_to_servers(&Message::TwoPcDecision {
            block: block.clone(),
        });
        self.handle_2pc_decision(block.clone());
        self.send_outcomes(height, &batch, &block, true);
    }

    fn reject_batch(&mut self, batch: &[PendingTxn]) {
        let hint = self.state.last_committed();
        for p in batch {
            self.send(
                p.client,
                &Message::EndTxnRejected {
                    handle: p.handle,
                    hint,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Round message collection. While waiting for protocol responses the
    // coordinator keeps servicing execution-layer traffic so clients of
    // *other* transactions are not blocked.
    // ------------------------------------------------------------------

    fn collect_votes(
        &mut self,
        height: u64,
        commitments: &mut [Option<cosi::Commitment>],
        involved: &mut [Option<InvolvedVote>],
    ) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = commitments.iter().filter(|c| c.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::Vote {
                height: h,
                commitment,
                involved: inv,
            } = msg
            {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if commitments[idx].is_none() {
                        commitments[idx] = Some(commitment);
                        involved[idx] = inv;
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    fn collect_responses(
        &mut self,
        height: u64,
        responses: &mut [Option<Result<cosi::Response, Refusal>>],
    ) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = responses.iter().filter(|r| r.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::Response { height: h, result } = msg {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if responses[idx].is_none() {
                        responses[idx] = Some(result);
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    fn collect_2pc_votes(&mut self, height: u64, votes: &mut [Option<bool>]) -> bool {
        let deadline = Instant::now() + self.config.round_timeout;
        let mut missing: usize = votes.iter().filter(|v| v.is_none()).count();
        while missing > 0 {
            let Some((from, msg)) = self.recv_during_round(deadline) else {
                return false;
            };
            if let Message::TwoPcVote {
                height: h, commit, ..
            } = msg
            {
                if h == height && from.raw() < self.config.n_servers {
                    let idx = from.raw() as usize;
                    if votes[idx].is_none() {
                        votes[idx] = Some(commit);
                        missing -= 1;
                    }
                }
            }
        }
        true
    }

    /// Receives during a protocol round: execution messages are serviced
    /// inline, end-transaction requests are queued for the next batch,
    /// protocol messages are returned to the caller. `None` = deadline
    /// passed.
    fn recv_during_round(&mut self, deadline: Instant) -> Option<(NodeId, Message)> {
        loop {
            let (from, msg, trace) = match self.next_message(deadline) {
                Ok(message) => message,
                Err(_) => return None,
            };
            match msg {
                Message::Begin { txn } => self.handle_begin(txn),
                Message::Read { txn, key } => self.handle_read(from, txn, key),
                Message::ReadMany { txn, keys } => self.handle_read_many(from, txn, keys),
                Message::Write { txn, key, value } => self.handle_write(from, txn, key, value),
                Message::EndTxn { handle, record } => {
                    self.handle_end_txn(from, handle, record, trace);
                }
                Message::EndTxnFwd {
                    client,
                    handle,
                    record,
                } if self.rotation_on() && from.raw() < self.config.n_servers => {
                    self.enqueue_end_txn(NodeId::new(client), handle, record, trace);
                }
                // Repair-plane service and durability acks are also
                // handled inline: a mid-round coordinator must neither
                // starve a repairing peer nor drop quorum votes.
                Message::RepairQuery { next_height } => {
                    self.handle_repair_query(from, next_height);
                }
                Message::RepairRequest { from: wanted, max } => {
                    self.handle_repair_request(from, wanted, max);
                }
                Message::RepairCheckpointRequest => self.handle_repair_checkpoint_request(from),
                Message::CheckpointMirror { snapshot } => {
                    self.handle_checkpoint_mirror(from, *snapshot);
                }
                Message::Durable { height } => self.handle_durable(from, height),
                // Snapshot reads are served mid-round too: the read
                // plane must not stall behind commit traffic.
                Message::SnapshotRead {
                    req,
                    shard,
                    keys,
                    min_covered,
                    at_height,
                } => self.handle_snapshot_read(from, req, shard, keys, min_covered, at_height),
                Message::RootQuery { from: from_height } => {
                    self.handle_root_query(from, from_height);
                }
                Message::Flush => {} // already mid-round
                Message::Shutdown => {
                    self.running = false;
                    return None;
                }
                other => return Some((from, other)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers.
    // ------------------------------------------------------------------

    /// The servers whose shards are accessed by these transactions.
    fn involvement(&self, txns: &[TxnRecord]) -> HashSet<u32> {
        let mut set = HashSet::new();
        for txn in txns {
            for r in &txn.read_set {
                set.insert(self.partitioner.owner(&r.key));
            }
            for w in &txn.write_set {
                set.insert(self.partitioner.owner(&w.key));
            }
        }
        set
    }
}

/// Rebuilds the per-key committed-write watermarks from a log's commit
/// blocks — the recovery and repair-install paths, where the live map
/// cannot be patched incrementally. A checkpoint-truncated log yields a
/// partial map, which only weakens the batch former's doom filter
/// (stale stragglers then abort through a round, as before).
fn watermarks_from_log(log: &TamperProofLog) -> HashMap<Key, Timestamp> {
    let mut marks: HashMap<Key, Timestamp> = HashMap::new();
    for block in log.blocks() {
        if block.decision != Decision::Commit {
            continue;
        }
        for txn in &block.txns {
            for w in &txn.write_set {
                let mark = marks.entry(w.key.clone()).or_insert(txn.id);
                if txn.id > *mark {
                    *mark = txn.id;
                }
            }
        }
    }
    marks
}

/// All writes in the batch that land on `server`'s shard, in txn order.
fn shard_writes(txns: &[TxnRecord], partitioner: &Partitioner, server: u32) -> Vec<(Key, Value)> {
    let mut writes = Vec::new();
    for txn in txns {
        for w in &txn.write_set {
            if partitioner.owner(&w.key) == server {
                writes.push((w.key.clone(), w.new_value.clone()));
            }
        }
    }
    writes
}

/// Previous-version value used by the stale-read fault (§5 Scenario 1:
/// the malicious server returns the old value with up-to-date
/// timestamps).
fn stale_value(stage: &ShardStage, key: &Key, item: &ItemState) -> Value {
    let wts = item.wts;
    if wts == Timestamp::ZERO {
        return item.value.clone();
    }
    let just_before = Timestamp::new(wts.counter().saturating_sub(1), u32::MAX);
    stage
        .shard
        .store()
        .value_at(key, just_before)
        .unwrap_or_else(|| item.value.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ranges_are_disjoint() {
        assert_ne!(server_node(0), client_node(0));
        assert_ne!(client_node(0), admin_node());
        assert!(server_node(100).raw() < client_node(0).raw());
    }

    #[test]
    fn shard_writes_filters_by_owner() {
        use fides_store::rwset::WriteEntry;
        let p = Partitioner::from_assignments(2, [(Key::new("a"), 0), (Key::new("b"), 1)]);
        let txn = TxnRecord {
            id: Timestamp::new(1, 0),
            read_set: vec![],
            write_set: vec![
                WriteEntry {
                    key: Key::new("a"),
                    new_value: Value::from_i64(1),
                    old_value: None,
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                },
                WriteEntry {
                    key: Key::new("b"),
                    new_value: Value::from_i64(2),
                    old_value: None,
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                },
            ],
        };
        let w0 = shard_writes(std::slice::from_ref(&txn), &p, 0);
        assert_eq!(w0.len(), 1);
        assert_eq!(w0[0].0, Key::new("a"));
        let w1 = shard_writes(&[txn], &p, 1);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].0, Key::new("b"));
    }
}
