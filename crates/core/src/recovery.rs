//! Server-level crash recovery: persistence configuration, backend
//! selection, and the verified restart path (paper §4.2.1's
//! recoverability, hardened for untrusted disks).
//!
//! `fides-durability` recovers and re-verifies the *ledger* (WAL →
//! [`TamperProofLog`] with hash links and collective signatures
//! re-checked, snapshot bound to the verified chain). This module adds
//! the *server* half: rebuilding the [`AuthenticatedShard`] by
//! restoring the newest snapshot and replaying only the log suffix
//! above it, re-deriving `last_committed`, and cross-checking the
//! replayed shard against the per-shard Merkle roots co-signed inside
//! the blocks — a root mismatch means the disk state disagrees with
//! the collectively signed history, and startup is refused.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use core::fmt;

use fides_crypto::schnorr::PublicKey;
use fides_durability::{
    recover_ledger, CommitPipeline, DurableLog, FileSnapshotStore, MemoryBlockLog,
    MemorySnapshotStore, PipelineConfig, RecoveryError, ShardSnapshot, SnapshotStore, SyncPolicy,
    WalBlockLog, WalConfig,
};
use fides_ledger::block::{Block, Decision};
use fides_ledger::log::TamperProofLog;
use fides_store::authenticated::AuthenticatedShard;
use fides_store::types::{Key, Timestamp, Value};

use crate::messages::CommitProtocol;
use crate::partition::Partitioner;

/// How many blocks between automatic shard snapshots by default.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 32;

/// Where a cluster persists its per-server state.
#[derive(Clone, Debug)]
pub enum PersistenceBackend {
    /// Segmented WAL + snapshot files under `<dir>/server-<idx>/`.
    Files(PathBuf),
    /// Shared in-memory stores (the pre-durability behavior, with
    /// crash/recovery still exercisable: state outlives the servers).
    Memory(MemoryCluster),
}

/// The shared in-memory "disks" of a [`PersistenceBackend::Memory`]
/// cluster, one per server index. Clones share storage, so a restarted
/// cluster built from a clone recovers the previous cluster's state.
#[derive(Clone, Debug, Default)]
pub struct MemoryCluster {
    stores: Arc<Mutex<HashMap<u32, (MemoryBlockLog, MemorySnapshotStore)>>>,
}

impl MemoryCluster {
    /// A fresh set of empty in-memory disks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles on server `idx`'s log and snapshot stores.
    fn open(&self, idx: u32) -> (MemoryBlockLog, MemorySnapshotStore) {
        let mut stores = self.stores.lock().expect("memory cluster lock");
        let (log, snaps) = stores.entry(idx).or_default();
        (log.handle(), snaps.handle())
    }
}

/// Persistence settings for a cluster.
#[derive(Clone, Debug)]
pub struct PersistenceConfig {
    /// Which backend stores the WAL and snapshots.
    pub backend: PersistenceBackend,
    /// WAL tuning (segment size, sync policy). A
    /// [`SyncPolicy::Pipelined`] policy moves every server's WAL behind
    /// a dedicated writer thread with asynchronous group commit (see
    /// [`CommitPipeline`]); other policies keep the original inline
    /// write-ahead behavior.
    pub wal: WalConfig,
    /// Blocks between automatic shard snapshots (0 = never snapshot —
    /// recovery then replays the full log).
    pub snapshot_interval: u64,
    /// Prune WAL segments below each saved snapshot, bounding the WAL
    /// directory's disk footprint.
    pub prune_wal: bool,
    /// With `prune_wal`, park pruned segments in `<server-dir>/archive`
    /// (file backend) instead of deleting them — the auditor can still
    /// request the full history, restarts rebuild the complete
    /// in-memory log, and repair peers can serve archived blocks.
    /// Without it, restarts recover a *suffix* log bound to the
    /// snapshot; the audit then seeds its replay from each server's
    /// surrendered checkpoint.
    pub archive_pruned: bool,
    /// Broadcast every saved snapshot to peers as a checkpoint
    /// *mirror*, and persist received mirrors. This is what keeps a
    /// server repairable after the whole fleet prunes below its crash
    /// height: its own shard image can be fetched back from any peer
    /// (checkpoint state transfer).
    pub mirror_checkpoints: bool,
    /// Acknowledge client outcomes only once a **quorum** of servers
    /// (majority, coordinator included) reports the block durable —
    /// closing the gap where an ack covered only the coordinator's
    /// copy. Cohorts report with `Message::Durable` after their own
    /// fsync (immediately under inline policies, from the WAL writer
    /// under `SyncPolicy::Pipelined`).
    pub quorum_acks: bool,
    /// How long the pipelined WAL writer keeps gathering appends after
    /// its greedy queue drain before issuing the covering fsync (see
    /// [`fides_durability::PipelineConfig::gather_window`]). Zero — the
    /// default — fsyncs as soon as the queue runs dry. A small window
    /// lets overlapped commit rounds share one disk round-trip (the
    /// `durability.batch_blocks` mean rises above 1). Ignored under
    /// inline durability.
    pub gather_window: std::time::Duration,
}

impl PersistenceConfig {
    /// File-backed persistence under `dir` with default tuning.
    pub fn files(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            backend: PersistenceBackend::Files(dir.into()),
            wal: WalConfig::default(),
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            prune_wal: false,
            archive_pruned: true,
            mirror_checkpoints: true,
            quorum_acks: false,
            gather_window: std::time::Duration::ZERO,
        }
    }

    /// In-memory persistence over `disks`.
    pub fn memory(disks: MemoryCluster) -> Self {
        PersistenceConfig {
            backend: PersistenceBackend::Memory(disks),
            wal: WalConfig::default(),
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            prune_wal: false,
            archive_pruned: true,
            mirror_checkpoints: true,
            quorum_acks: false,
            gather_window: std::time::Duration::ZERO,
        }
    }

    /// Overrides the WAL configuration.
    pub fn wal(mut self, wal: WalConfig) -> Self {
        self.wal = wal;
        self
    }

    /// Overrides the snapshot interval.
    pub fn snapshot_interval(mut self, blocks: u64) -> Self {
        self.snapshot_interval = blocks;
        self
    }

    /// Enables WAL pruning below snapshots (see
    /// [`PersistenceConfig::prune_wal`]).
    pub fn prune_wal(mut self, prune: bool) -> Self {
        self.prune_wal = prune;
        self
    }

    /// Controls whether pruned segments are archived for the auditor or
    /// deleted outright.
    pub fn archive_pruned(mut self, archive: bool) -> Self {
        self.archive_pruned = archive;
        self
    }

    /// Controls checkpoint mirroring to peers (see
    /// [`PersistenceConfig::mirror_checkpoints`]).
    pub fn mirror_checkpoints(mut self, mirror: bool) -> Self {
        self.mirror_checkpoints = mirror;
        self
    }

    /// Enables quorum-durable client acknowledgements (see
    /// [`PersistenceConfig::quorum_acks`]).
    pub fn quorum_acks(mut self, quorum: bool) -> Self {
        self.quorum_acks = quorum;
        self
    }

    /// Sets the pipelined writer's append-gather window (see
    /// [`PersistenceConfig::gather_window`]).
    pub fn gather_window(mut self, window: std::time::Duration) -> Self {
        self.gather_window = window;
        self
    }

    /// Whether this configuration runs the asynchronous group-commit
    /// pipeline.
    pub fn is_pipelined(&self) -> bool {
        self.wal.sync == SyncPolicy::Pipelined
    }

    /// The on-disk directory of server `idx` (file backend only).
    pub fn server_dir(root: &std::path::Path, idx: u32) -> PathBuf {
        root.join(format!("server-{idx:03}"))
    }
}

/// A server's persistence engine, attached to its
/// [`crate::server::ServerState`].
///
/// `Inline` is the original write-ahead shape: the server thread
/// appends and fsyncs each block on its commit path. `Pipelined` hands
/// both the log and the snapshot store to a [`CommitPipeline`] writer
/// thread: appends batch across rounds behind one covering fsync and
/// commit acknowledgements are deferred until their height is durable.
#[derive(Debug)]
pub enum Durability {
    /// Synchronous write-ahead durability on the commit path.
    Inline {
        /// The durable block log (WAL or memory).
        log: Box<dyn DurableLog>,
        /// The snapshot store (files or memory).
        snapshots: Box<dyn SnapshotStore>,
        /// Blocks between automatic snapshots (0 = never).
        snapshot_interval: u64,
        /// Prune the WAL below each saved snapshot.
        prune_wal: bool,
    },
    /// Asynchronous group commit on a dedicated writer thread.
    Pipelined {
        /// The writer-thread engine owning log and snapshots.
        pipeline: CommitPipeline,
        /// Blocks between automatic snapshots (0 = never).
        snapshot_interval: u64,
    },
}

impl Durability {
    /// Blocks between automatic snapshots (0 = never).
    pub fn snapshot_interval(&self) -> u64 {
        match self {
            Durability::Inline {
                snapshot_interval, ..
            }
            | Durability::Pipelined {
                snapshot_interval, ..
            } => *snapshot_interval,
        }
    }

    /// The pipeline, when running in pipelined mode.
    pub fn pipeline(&self) -> Option<&CommitPipeline> {
        match self {
            Durability::Pipelined { pipeline, .. } => Some(pipeline),
            Durability::Inline { .. } => None,
        }
    }
}

/// Why a persisted server refused to start.
#[derive(Debug)]
pub enum ServerStartError {
    /// The ledger-level recovery failed (corrupt WAL, tampered chain,
    /// unlinked snapshot, ...).
    Recovery {
        /// The refusing server.
        server: u32,
        /// What failed.
        source: RecoveryError,
    },
    /// Replaying the verified log left the shard with a Merkle root
    /// different from the one this server co-signed in a block — the
    /// persisted datastore disagrees with the signed history.
    ShardRootMismatch {
        /// The refusing server.
        server: u32,
        /// The block whose root check failed.
        height: u64,
    },
}

impl fmt::Display for ServerStartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerStartError::Recovery { server, source } => {
                write!(f, "server {server}: {source}")
            }
            ServerStartError::ShardRootMismatch { server, height } => write!(
                f,
                "server {server}: refusing startup: replayed shard root at block {height} \
                 does not match the co-signed root"
            ),
        }
    }
}

impl std::error::Error for ServerStartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerStartError::Recovery { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A recovered server: verified state plus the (re-opened) persistence
/// handles to keep appending through.
#[derive(Debug)]
pub struct RecoveredServer {
    /// The re-validated log.
    pub log: TamperProofLog,
    /// The shard with the snapshot restored and the log suffix
    /// replayed.
    pub shard: AuthenticatedShard,
    /// Highest committed transaction timestamp in the recovered state.
    pub last_committed: Timestamp,
    /// Handles for continued persistence.
    pub durability: Durability,
    /// Peers' checkpoint mirrors persisted on this disk — reloaded so
    /// the server keeps serving them after its own restart (repair
    /// plane).
    pub mirrors: Vec<(u32, ShardSnapshot)>,
    /// `true` when recovery adopted a snapshot found **ahead** of the
    /// durable log (the WAL lost its tail past the checkpoint): the
    /// adopted tip hash is trusted provisionally and the server starts
    /// in `Repairing` until a peer's co-signed chain confirms or
    /// replaces it.
    pub provisional: bool,
}

/// Opens server `idx`'s backend, runs the verified recovery path, and
/// replays the log (suffix) into the shard.
///
/// `initial_shard` is the deterministic preloaded population — the
/// state a fresh server starts from and the replay base when no
/// snapshot exists. `protocol` selects the verification and replay
/// semantics: the 2PC baseline has unsigned blocks (no cosign pass)
/// and maintains no Merkle tree (store-only replay, and servers never
/// snapshot under it).
///
/// A server whose durable log ends below its peers' (torn by a crash,
/// or the disk lost entirely) starts at whatever verified height its
/// disk supports and then **repairs**: the repair plane
/// ([`crate::repair`]) fetches the missing decision blocks — or a
/// mirrored checkpoint plus log suffix when peers have pruned below the
/// restart height — from its peers, re-verifies everything, and rejoins
/// live rounds. Until the repair completes the auditor treats the
/// server as lagging, not faulty.
///
/// # Errors
///
/// [`ServerStartError`] when the persisted state fails any integrity
/// check; the server must not serve traffic.
pub fn recover_server(
    idx: u32,
    initial_shard: AuthenticatedShard,
    partitioner: &Partitioner,
    server_pks: &[PublicKey],
    protocol: CommitProtocol,
    persistence: &PersistenceConfig,
) -> Result<RecoveredServer, ServerStartError> {
    let verify_cosign = protocol == CommitProtocol::TfCommit;
    let recovery_err = |source| ServerStartError::Recovery {
        server: idx,
        source,
    };

    // Open the backend: durable handles + everything it already holds.
    type OpenedBackend = (
        Box<dyn DurableLog>,
        Vec<Block>,
        Box<dyn SnapshotStore>,
        Option<ShardSnapshot>,
    );
    let (log_handle, blocks, snap_handle, snapshot): OpenedBackend = match &persistence.backend {
        PersistenceBackend::Files(root) => {
            let dir = PersistenceConfig::server_dir(root, idx);
            // With archival pruning, pruned segments park in `archive/`
            // and the full chain is reassembled from both directories;
            // without it the WAL may legitimately start above height 0
            // and recovery binds the suffix to the snapshot.
            let (wal, blocks) = if persistence.prune_wal && persistence.archive_pruned {
                WalBlockLog::open_with_archive(
                    dir.join("wal"),
                    dir.join("archive"),
                    persistence.wal,
                )
            } else {
                WalBlockLog::open(dir.join("wal"), persistence.wal)
            }
            .map_err(|e| recovery_err(RecoveryError::Wal(e)))?;
            let snaps = FileSnapshotStore::open(dir.join("snapshots"))
                .map_err(|e| recovery_err(RecoveryError::Snapshot(e)))?;
            let snapshot = snaps
                .load_latest()
                .map_err(|e| recovery_err(RecoveryError::Snapshot(e)))?;
            (Box::new(wal), blocks, Box::new(snaps), snapshot)
        }
        PersistenceBackend::Memory(disks) => {
            let (log, snaps) = disks.open(idx);
            let blocks = log.blocks();
            let snapshot = snaps
                .load_latest()
                .map_err(|e| recovery_err(RecoveryError::Snapshot(e)))?;
            (Box::new(log), blocks, Box::new(snaps), snapshot)
        }
    };

    // Peers' checkpoint mirrors survive this server's own restart.
    let mirrors = snap_handle
        .load_mirrors()
        .map_err(|e| recovery_err(RecoveryError::Snapshot(e)))?;

    // A snapshot AHEAD of the durable log: the WAL lost blocks the
    // checkpoint had already absorbed (a torn adoption, or segments
    // destroyed past the checkpoint). The pre-repair system refused
    // such disks outright; with the repair plane the checkpoint is
    // adopted *provisionally* — the server starts as a suffix at the
    // checkpoint height, in `Repairing`, and only rejoins once a peer's
    // co-signed chain confirms (or extends past) the adopted tip hash.
    // A forged snapshot therefore quarantines the server instead of
    // letting it serve fabricated state.
    let log_end = blocks.last().map_or(0, |b| b.height + 1);
    if let Some(snap) = &snapshot {
        if snap.height > log_end {
            let shard = snap
                .restore_verified()
                .map_err(|e| recovery_err(RecoveryError::Snapshot(e)))?;
            let mut log_handle = log_handle;
            log_handle
                .reset_to(snap.height)
                .map_err(|e| recovery_err(RecoveryError::Wal(e)))?;
            let log = TamperProofLog::from_suffix(snap.height, snap.tip_hash, Vec::new())
                .expect("empty suffix always chains");
            let durability =
                build_durability(persistence, log_handle, snap_handle, log.next_height());
            return Ok(RecoveredServer {
                log,
                shard,
                last_committed: snap.last_committed,
                durability,
                mirrors,
                provisional: true,
            });
        }
    }

    // Ledger-level verification: chain, signatures, snapshot binding.
    let recovered =
        recover_ledger(blocks, snapshot, server_pks, verify_cosign).map_err(recovery_err)?;

    // Shard base: restored snapshot, or the preloaded population.
    let (mut shard, mut last_committed) = match &recovered.snapshot {
        Some(snap) => {
            let shard = snap
                .restore_verified()
                .expect("snapshot verified by recover_ledger");
            (shard, snap.last_committed)
        }
        None => (initial_shard, Timestamp::ZERO),
    };

    // Replay the suffix, cross-checking the roots this server co-signed.
    for block in recovered.replay_blocks() {
        if block.decision != Decision::Commit {
            continue;
        }
        replay_block(&mut shard, block, partitioner, idx, protocol);
        if let Some(ts) = block.max_txn_ts() {
            if ts > last_committed {
                last_committed = ts;
            }
        }
        if let Some(signed_root) = block.root_of(idx) {
            if shard.root() != signed_root {
                return Err(ServerStartError::ShardRootMismatch {
                    server: idx,
                    height: block.height,
                });
            }
        }
    }

    let durability = build_durability(
        persistence,
        log_handle,
        snap_handle,
        recovered.log.next_height(),
    );

    Ok(RecoveredServer {
        log: recovered.log,
        shard,
        last_committed,
        durability,
        mirrors,
        provisional: false,
    })
}

/// Wraps the opened backend handles in the configured persistence
/// engine (inline write-ahead, or the pipelined writer thread).
fn build_durability(
    persistence: &PersistenceConfig,
    log_handle: Box<dyn DurableLog>,
    snap_handle: Box<dyn SnapshotStore>,
    durable_height: u64,
) -> Durability {
    if persistence.is_pipelined() {
        Durability::Pipelined {
            pipeline: CommitPipeline::new(
                log_handle,
                snap_handle,
                durable_height,
                PipelineConfig {
                    prune_wal: persistence.prune_wal,
                    gather_window: persistence.gather_window,
                },
            ),
            snapshot_interval: persistence.snapshot_interval,
        }
    } else {
        Durability::Inline {
            log: log_handle,
            snapshots: snap_handle,
            snapshot_interval: persistence.snapshot_interval,
            prune_wal: persistence.prune_wal,
        }
    }
}

/// Applies one committed block's effects on `server`'s shard — the
/// replay twin of the live commit path in `Server::apply_block`,
/// including its protocol split (2PC keeps no Merkle tree). Also used
/// by the repair plane to replay verified transfers
/// ([`crate::repair::verify_transfer`]).
pub(crate) fn replay_block(
    shard: &mut AuthenticatedShard,
    block: &Block,
    partitioner: &Partitioner,
    server: u32,
    protocol: CommitProtocol,
) {
    for txn in &block.txns {
        let reads: Vec<Key> = txn
            .read_set
            .iter()
            .filter(|r| partitioner.owner(&r.key) == server)
            .map(|r| r.key.clone())
            .collect();
        let writes: Vec<(Key, Value)> = txn
            .write_set
            .iter()
            .filter(|w| partitioner.owner(&w.key) == server)
            .map(|w| (w.key.clone(), w.new_value.clone()))
            .collect();
        match protocol {
            CommitProtocol::TfCommit => {
                shard.apply_commit(txn.id, &reads, &writes);
            }
            CommitProtocol::TwoPhaseCommit => {
                shard.apply_commit_store_only(txn.id, &reads, &writes);
            }
        }
    }
}
