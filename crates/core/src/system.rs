//! The cluster harness: assembles servers, clients and the auditor into
//! a running Fides deployment (the experimental setup of §6).
//!
//! A [`FidesCluster`] spawns one thread per database server, preloads
//! each shard with `items_per_shard` data items, registers every
//! participant's public key in the shared directory, and hands out
//! [`ClientSession`]s and [`AuditReport`]s.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fides_crypto::encoding::Encodable;
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_net::{Envelope, Network, NetworkConfig, NodeId};
use fides_store::authenticated::{AuthenticatedShard, MhtUpdateStats};
use fides_store::types::{Key, Value};

use crate::audit::{AuditInput, AuditReport, Auditor};
use crate::behavior::Behavior;
use crate::client::{ClientSession, TimestampOracle};
use crate::messages::{CommitProtocol, Message};
use crate::partition::Partitioner;
use crate::recovery::{recover_server, PersistenceConfig, ServerStartError};
use crate::server::{
    admin_node, client_node, server_node, Directory, Server, ServerConfig, ServerState,
};

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of database servers (= shards).
    pub n_servers: u32,
    /// Data items preloaded per shard (the paper defaults to 10 000).
    pub items_per_shard: usize,
    /// Transactions per block (the paper's evaluation typically uses
    /// 100; Figure 12 uses 1).
    pub batch_size: usize,
    /// Which commitment protocol to run.
    pub protocol: CommitProtocol,
    /// Network latency/fault model.
    pub network: NetworkConfig,
    /// Per-server fault injection.
    pub behaviors: HashMap<u32, Behavior>,
    /// Client slots pre-registered in the key directory.
    pub max_clients: u32,
    /// Coordinator idle time before terminating a partial batch.
    pub flush_interval: Duration,
    /// Coordinator phase timeout.
    pub round_timeout: Duration,
    /// Initial numeric value of every preloaded item.
    pub initial_value: i64,
    /// Durable storage for logs and shard snapshots (`None` = the
    /// original memory-only cluster).
    pub persistence: Option<PersistenceConfig>,
    /// How long a repairing server counts as *lagging* (no
    /// incomplete-log violation) before the audit treats the missing
    /// tail as an omission fault after all.
    pub repair_grace: Duration,
    /// Rotate commit leadership by block height (`height % n_servers`)
    /// instead of pinning every round on the designated coordinator.
    /// TFCommit only; see [`crate::server::ServerConfig::rotate_leaders`].
    pub rotate_leaders: bool,
    /// Liveness watchdog threshold (see
    /// [`crate::server::ServerConfig::stall_timeout`]). `None` follows
    /// `round_timeout`; `Some(Duration::ZERO)` disables the watchdog.
    pub stall_timeout: Option<Duration>,
}

impl ClusterConfig {
    /// A sensible default configuration for `n_servers` servers.
    pub fn new(n_servers: u32) -> Self {
        ClusterConfig {
            n_servers,
            items_per_shard: 100,
            batch_size: 1,
            protocol: CommitProtocol::TfCommit,
            network: NetworkConfig::default(),
            behaviors: HashMap::new(),
            max_clients: 256,
            flush_interval: Duration::from_millis(5),
            round_timeout: Duration::from_secs(5),
            initial_value: 100,
            persistence: None,
            repair_grace: Duration::from_secs(30),
            rotate_leaders: false,
            stall_timeout: None,
        }
    }

    /// Sets the liveness watchdog threshold (`Duration::ZERO`
    /// disables it; the default follows `round_timeout`).
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Enables (or disables) rotating commit leadership.
    pub fn rotate_leaders(mut self, rotate: bool) -> Self {
        self.rotate_leaders = rotate;
        self
    }

    /// Sets the number of preloaded items per shard.
    pub fn items_per_shard(mut self, items: usize) -> Self {
        self.items_per_shard = items;
        self
    }

    /// Sets the number of transactions per block.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Selects the commitment protocol.
    pub fn protocol(mut self, protocol: CommitProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the network model.
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Injects a behaviour into one server.
    pub fn behavior(mut self, server: u32, behavior: Behavior) -> Self {
        self.behaviors.insert(server, behavior);
        self
    }

    /// Sets the number of client slots.
    pub fn max_clients(mut self, max: u32) -> Self {
        self.max_clients = max;
        self
    }

    /// Sets the coordinator's phase timeout (crash-fault tests use
    /// short values).
    pub fn round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Sets the coordinator's idle-flush interval.
    pub fn flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = interval;
        self
    }

    /// Sets the initial numeric value of preloaded items.
    pub fn initial_value(mut self, value: i64) -> Self {
        self.initial_value = value;
        self
    }

    /// Sets the repairing-server audit grace window (see
    /// [`ClusterConfig::repair_grace`]).
    pub fn repair_grace(mut self, grace: Duration) -> Self {
        self.repair_grace = grace;
        self
    }

    /// Persists every server's log and snapshots under `dir`
    /// (`<dir>/server-<idx>/{wal,snapshots}`). Starting a cluster twice
    /// over the same directory is a restart: the second start recovers
    /// and re-verifies the first one's state.
    pub fn persist_to(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.persistence(PersistenceConfig::files(dir))
    }

    /// Sets a full persistence configuration (backend, WAL tuning,
    /// snapshot interval).
    pub fn persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.persistence = Some(persistence);
        self
    }
}

/// A running cluster.
pub struct FidesCluster {
    config: ClusterConfig,
    network: Network,
    partitioner: Partitioner,
    directory: Directory,
    server_pks: Vec<PublicKey>,
    oracle: TimestampOracle,
    /// The deterministic genesis composite root of every shard — the
    /// verified read plane's trusted anchor for pre-commit state,
    /// handed to every client's root registry.
    genesis_roots: Vec<fides_crypto::Digest>,
    /// Refuted snapshot reads filed by this cluster's clients; folded
    /// into audits as `TamperedRead` violations.
    read_evidence: Arc<parking_lot::Mutex<Vec<fides_read::ReadEvidence>>>,
    states: Vec<Arc<ServerState>>,
    /// One slot per server; `None` while that server is crashed
    /// (between [`FidesCluster::crash_server`] and
    /// [`FidesCluster::restart_server`]).
    threads: Vec<Option<JoinHandle<()>>>,
    admin: fides_net::Endpoint,
    admin_kp: KeyPair,
    initial: HashMap<Key, Value>,
}

impl FidesCluster {
    /// Builds shards, keys and the partition map; spawns the server
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics when a persisted server refuses to start (corrupt or
    /// tampered WAL/snapshot) — use [`FidesCluster::try_start`] to
    /// handle the refusal.
    pub fn start(config: ClusterConfig) -> FidesCluster {
        match Self::try_start(config) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`FidesCluster::start`], but a persisted server that fails
    /// verified recovery surfaces as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// The first [`ServerStartError`] encountered; no threads are left
    /// running.
    pub fn try_start(config: ClusterConfig) -> Result<FidesCluster, ServerStartError> {
        assert!(config.n_servers > 0, "need at least one server");
        let network = Network::new(config.network.clone());

        // Key material: deterministic seeds keep runs reproducible.
        let server_kps: Vec<KeyPair> = (0..config.n_servers)
            .map(|i| KeyPair::from_seed(format!("fides-server-{i}").as_bytes()))
            .collect();
        let server_pks: Vec<PublicKey> = server_kps.iter().map(|k| k.public_key()).collect();
        let admin_kp = KeyPair::from_seed(b"fides-admin");

        let mut directory: HashMap<NodeId, PublicKey> = HashMap::new();
        for (i, kp) in server_kps.iter().enumerate() {
            directory.insert(server_node(i as u32), kp.public_key());
        }
        for j in 0..config.max_clients {
            let kp = KeyPair::from_seed(format!("fides-client-{j}").as_bytes());
            directory.insert(client_node(j), kp.public_key());
        }
        directory.insert(admin_node(), admin_kp.public_key());
        let directory: Directory = Arc::new(directory);

        // Shards and the partition map.
        let mut assignments =
            Vec::with_capacity(config.n_servers as usize * config.items_per_shard);
        let mut initial = HashMap::new();
        let mut shards = Vec::with_capacity(config.n_servers as usize);
        for s in 0..config.n_servers {
            for i in 0..config.items_per_shard {
                let key = Self::key_for(s, i);
                assignments.push((key.clone(), s));
                initial.insert(key, Value::from_i64(config.initial_value));
            }
            shards.push(Self::build_initial_shard(&config, s));
        }
        let genesis_roots: Vec<fides_crypto::Digest> = shards.iter().map(|s| s.root()).collect();
        let partitioner = Partitioner::from_assignments(config.n_servers, assignments);

        // Build every server's state first — recovering (and verifying)
        // persisted state where configured — so a refused startup
        // surfaces before any thread runs.
        let mut server_states = Vec::with_capacity(config.n_servers as usize);
        for (s, shard) in shards.into_iter().enumerate() {
            let s = s as u32;
            let behavior = config.behaviors.get(&s).cloned().unwrap_or_default();
            let state = match &config.persistence {
                None => ServerState::new(s, shard, behavior),
                Some(persistence) => {
                    let recovered = recover_server(
                        s,
                        shard,
                        &partitioner,
                        &server_pks,
                        config.protocol,
                        persistence,
                    )?;
                    ServerState::recovered(s, behavior, recovered)
                }
            };
            server_states.push(state);
        }

        // Spawn the servers.
        let mut states = Vec::with_capacity(config.n_servers as usize);
        let mut threads = Vec::with_capacity(config.n_servers as usize);
        for state in server_states {
            let s = state.idx;
            let server_config = Self::build_server_config(&config, s);
            let endpoint = network.register(server_node(s));
            let (server, state) = Server::from_state(
                server_config,
                state,
                endpoint,
                server_kps[s as usize],
                Arc::clone(&directory),
                partitioner.clone(),
                server_pks.clone(),
            );
            states.push(state);
            threads.push(Some(
                std::thread::Builder::new()
                    .name(format!("fides-server-{s}"))
                    .spawn(move || server.run())
                    .expect("spawn server thread"),
            ));
        }

        let admin = network.register(admin_node());
        Ok(FidesCluster {
            config,
            network,
            partitioner,
            directory,
            server_pks,
            oracle: TimestampOracle::new(),
            genesis_roots,
            read_evidence: Arc::new(parking_lot::Mutex::new(Vec::new())),
            states,
            threads,
            admin,
            admin_kp,
            initial,
        })
    }

    fn key_for(server: u32, item: usize) -> Key {
        Key::new(format!("s{server:03}:item-{item:06}"))
    }

    /// The deterministic preloaded population of server `s`'s shard —
    /// a fresh server's starting state and the replay base when its
    /// disk holds no snapshot.
    fn build_initial_shard(config: &ClusterConfig, s: u32) -> AuthenticatedShard {
        let items = (0..config.items_per_shard)
            .map(|i| (Self::key_for(s, i), Value::from_i64(config.initial_value)))
            .collect();
        AuthenticatedShard::new(items)
    }

    fn build_server_config(config: &ClusterConfig, idx: u32) -> ServerConfig {
        ServerConfig {
            idx,
            n_servers: config.n_servers,
            protocol: config.protocol,
            batch_size: config.batch_size,
            flush_interval: config.flush_interval,
            round_timeout: config.round_timeout,
            repair: true,
            mirror_checkpoints: config
                .persistence
                .as_ref()
                .is_some_and(|p| p.mirror_checkpoints),
            quorum_acks: config.persistence.as_ref().is_some_and(|p| p.quorum_acks),
            rotate_leaders: config.rotate_leaders,
            stall_timeout: config.stall_timeout.unwrap_or(config.round_timeout),
        }
    }

    /// The cluster's key naming scheme, usable without a running
    /// cluster (e.g. to parameterize a workload generator).
    pub fn key_name(server: u32, item: usize) -> Key {
        Self::key_for(server, item)
    }

    /// The canonical key of item `item` in server `server`'s shard.
    pub fn key_of(&self, server: u32, item: usize) -> Key {
        assert!(server < self.config.n_servers, "no such server");
        assert!(item < self.config.items_per_shard, "no such item");
        Self::key_for(server, item)
    }

    /// All preloaded keys, shard by shard.
    pub fn all_keys(&self) -> Vec<Key> {
        let mut keys =
            Vec::with_capacity(self.config.n_servers as usize * self.config.items_per_shard);
        for s in 0..self.config.n_servers {
            for i in 0..self.config.items_per_shard {
                keys.push(Self::key_for(s, i));
            }
        }
        keys
    }

    /// The cluster's partition map.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Every server's public key, by index (the CoSi witness set) —
    /// what a client needs to verify outcomes out-of-band (e.g.
    /// [`crate::client::finalize_outcomes`]).
    pub fn server_pks(&self) -> &[PublicKey] {
        &self.server_pks
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared timestamp oracle.
    pub fn oracle(&self) -> TimestampOracle {
        self.oracle.clone()
    }

    /// Creates a client session for slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the configured client slots or is reused.
    pub fn client(&self, id: u32) -> ClientSession {
        assert!(id < self.config.max_clients, "client slot out of range");
        let kp = KeyPair::from_seed(format!("fides-client-{id}").as_bytes());
        ClientSession::new(
            id,
            self.network.register(client_node(id)),
            kp,
            Arc::clone(&self.directory),
            self.partitioner.clone(),
            self.server_pks.clone(),
            self.oracle.clone(),
            self.config.protocol,
        )
        .with_read_context(self.genesis_roots.clone(), Arc::clone(&self.read_evidence))
        .with_rotation(
            self.config.rotate_leaders && matches!(self.config.protocol, CommitProtocol::TfCommit),
        )
    }

    /// The deterministic genesis composite root of every shard — what a
    /// stand-alone client needs to seed its own
    /// [`fides_read::RootRegistry`].
    pub fn genesis_roots(&self) -> &[fides_crypto::Digest] {
        &self.genesis_roots
    }

    /// A snapshot of the refuted snapshot reads this cluster's clients
    /// have filed so far.
    pub fn read_evidence(&self) -> Vec<fides_read::ReadEvidence> {
        self.read_evidence.lock().clone()
    }

    /// The metrics of one server (stage latencies, durability, read and
    /// repair planes — see `docs/telemetry.md`).
    pub fn server_metrics(&self, idx: u32) -> fides_telemetry::MetricsSnapshot {
        self.states[idx as usize].metrics()
    }

    /// The cluster-wide metric aggregate: every server's snapshot
    /// merged (counters/histograms add, gauges add with watermark max).
    pub fn metrics(&self) -> fides_telemetry::MetricsSnapshot {
        let mut merged = fides_telemetry::MetricsSnapshot::default();
        for state in &self.states {
            merged.merge(&state.metrics());
        }
        merged
    }

    /// Every span the servers' trace sinks retained (fides-trace),
    /// across the whole cluster — feed to
    /// [`fides_telemetry::trace::assemble`] for trees or
    /// [`fides_telemetry::trace::to_chrome_json`] for a Chrome/Perfetto
    /// file. Client-side spans live in each
    /// [`ClientSession::spans`](crate::client::ClientSession::spans);
    /// append them for the full picture.
    pub fn dump_traces(&self) -> Vec<fides_telemetry::Span> {
        let mut spans = Vec::new();
        for state in &self.states {
            spans.extend(state.telemetry.spans.snapshot());
        }
        spans
    }

    /// One server's liveness-stall reports and flight-recorder dumps.
    pub fn stall_log(&self, idx: u32) -> Arc<fides_telemetry::StallLog> {
        Arc::clone(&self.states[idx as usize].telemetry.stall_log)
    }

    /// Asks the commit leader to terminate any pending partial batch.
    /// Under rotating leadership any server may hold queued end-txns,
    /// so the flush goes to every server (a server with nothing queued
    /// ignores it).
    pub fn flush(&self) {
        for s in 0..self.config.n_servers {
            let env = Envelope::sign(
                &self.admin_kp,
                admin_node(),
                server_node(s),
                Message::Flush.encode(),
            );
            self.admin.send(env);
        }
    }

    /// Waits until all *running* server logs converge to the same tip
    /// height (rounds fully propagated, repairs installed) or the
    /// timeout passes. Returns the converged height, or `None` on
    /// timeout. Crashed servers (between [`FidesCluster::crash_server`]
    /// and [`FidesCluster::restart_server`]) are excluded.
    pub fn settle(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            let lens: Vec<usize> = self
                .states
                .iter()
                .enumerate()
                .filter(|(i, _)| self.threads[*i].is_some())
                .map(|(_, s)| s.next_height() as usize)
                .collect();
            let first = lens.first().copied().unwrap_or(0);
            if lens.iter().all(|&l| l == first) {
                return Some(first);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Kills one server mid-run: its durability engine is torn down
    /// **without** flushing (the on-disk state is whatever the last
    /// covering fsync left — `kill -9`), and its thread exits. The
    /// remaining cluster keeps running; rounds involving the dead
    /// shard abort until [`FidesCluster::restart_server`] brings it
    /// back through verified recovery + repair.
    pub fn crash_server(&mut self, idx: u32) {
        let slot = idx as usize;
        self.states[slot].kill_durability();
        let env = Envelope::sign(
            &self.admin_kp,
            admin_node(),
            server_node(idx),
            Message::Shutdown.encode(),
        );
        self.admin.send(env);
        if let Some(thread) = self.threads[slot].take() {
            let _ = thread.join();
        }
    }

    /// Restarts a crashed server over its surviving disk state: the
    /// verified recovery path re-checks whatever the disk holds, the
    /// server re-registers with the transport, announces its tip, and
    /// the repair plane transfers (and re-verifies) everything it
    /// missed before it serves commit votes again.
    ///
    /// # Errors
    ///
    /// [`ServerStartError`] when the surviving disk state fails
    /// integrity verification.
    ///
    /// # Panics
    ///
    /// Panics when the cluster has no persistence configured or the
    /// server was not crashed first.
    pub fn restart_server(&mut self, idx: u32) -> Result<(), ServerStartError> {
        let slot = idx as usize;
        assert!(
            self.threads[slot].is_none(),
            "crash_server({idx}) before restart_server({idx})"
        );
        let persistence = self
            .config
            .persistence
            .clone()
            .expect("restart requires a persistence configuration");
        let recovered = recover_server(
            idx,
            Self::build_initial_shard(&self.config, idx),
            &self.partitioner,
            &self.server_pks,
            self.config.protocol,
            &persistence,
        )?;
        let behavior = self.config.behaviors.get(&idx).cloned().unwrap_or_default();
        let state = ServerState::recovered(idx, behavior, recovered);
        let endpoint = self.network.reregister(server_node(idx));
        let keypair = KeyPair::from_seed(format!("fides-server-{idx}").as_bytes());
        let (server, state) = Server::from_state(
            Self::build_server_config(&self.config, idx),
            state,
            endpoint,
            keypair,
            Arc::clone(&self.directory),
            self.partitioner.clone(),
            self.server_pks.clone(),
        );
        self.states[slot] = state;
        self.threads[slot] = Some(
            std::thread::Builder::new()
                .name(format!("fides-server-{idx}"))
                .spawn(move || server.run())
                .expect("spawn server thread"),
        );
        Ok(())
    }

    /// Waits until server `idx` has finished repairing **and** reached
    /// the running cluster's converged tip. Returns `true` on success
    /// within the timeout — the rejoin barrier tests and the bench
    /// driver use to measure repair time.
    pub fn await_rejoin(&self, idx: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let state = &self.states[idx as usize];
            if !state.is_repairing() {
                let tip = state.next_height();
                let max = self
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.threads[*i].is_some())
                    .map(|(_, s)| s.next_height())
                    .max()
                    .unwrap_or(0);
                if tip == max {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Runs a full audit: gathers every server's (possibly doctored)
    /// log, datastore snapshot and newest persisted checkpoint, then
    /// applies Lemmas 1–7. Each server's `(log, shard)` pair is taken
    /// consistently ([`ServerState::audit_snapshot`]) even while its
    /// commit pipeline is mid-flight.
    ///
    /// Repair-plane integration: a server that is repairing within
    /// [`ClusterConfig::repair_grace`] is reported as *lagging* rather
    /// than accused of an incomplete log, and every refuted transfer a
    /// repairer recorded is surfaced as a violation against the peer
    /// that served it.
    pub fn audit(&self) -> AuditReport {
        self.settle(Duration::from_secs(2));
        let mut logs = Vec::with_capacity(self.states.len());
        let mut shards = Vec::with_capacity(self.states.len());
        let mut checkpoints = Vec::with_capacity(self.states.len());
        let mut lagging = std::collections::HashSet::new();
        for state in &self.states {
            if state.is_repairing()
                && state
                    .repair_since()
                    .is_some_and(|since| since.elapsed() <= self.config.repair_grace)
            {
                lagging.insert(state.idx);
            }
            let (log, shard) = state.audit_snapshot();
            logs.push(log);
            shards.push(shard);
            checkpoints.push(state.persisted_snapshot());
        }
        let auditor = Auditor::new(
            self.partitioner.clone(),
            self.server_pks.clone(),
            self.initial.clone(),
        )
        .with_lagging(lagging);
        let auditor = match self.config.protocol {
            CommitProtocol::TfCommit => auditor,
            CommitProtocol::TwoPhaseCommit => auditor.without_cosign_verification(),
        };
        let mut report = auditor.audit(&AuditInput {
            logs,
            shards,
            checkpoints,
        });
        // Byzantine repair peers: evidence the repairers collected.
        for state in &self.states {
            for evidence in state.repair_evidence() {
                report.violations.push(crate::audit::Violation {
                    server: Some(evidence.peer),
                    height: None,
                    kind: crate::audit::ViolationKind::TamperedTransfer {
                        fault: evidence.fault,
                    },
                });
            }
        }
        // Byzantine read servers: refuted snapshot reads the clients
        // filed — each names the precise server that served the forged
        // value/absence/header or the stale-beyond-bound root.
        for evidence in self.read_evidence.lock().iter() {
            report.violations.push(crate::audit::Violation {
                server: Some(evidence.server),
                height: None,
                kind: crate::audit::ViolationKind::TamperedRead {
                    fault: evidence.fault.clone(),
                },
            });
        }
        report
    }

    /// Adjusts the repairing-server audit grace window on a running
    /// cluster (tests exercising the lagging deadline).
    pub fn set_repair_grace(&mut self, grace: Duration) {
        self.config.repair_grace = grace;
    }

    /// Direct (read) access to a server's state, for tests and
    /// examples.
    pub fn server_state(&self, idx: u32) -> Arc<ServerState> {
        Arc::clone(&self.states[idx as usize])
    }

    /// Per-server Merkle-maintenance statistics (Figure 14's "MHT
    /// update time").
    pub fn mht_stats(&self) -> Vec<MhtUpdateStats> {
        self.states.iter().map(|s| s.mht_stats()).collect()
    }

    /// The cluster's commit-round statistics (the paper's commit
    /// latency metric) — summed over every server, since under rotating
    /// leadership each leads the rounds at its heights. With the fixed
    /// coordinator every non-coordinator contributes zeros.
    pub fn round_stats(&self) -> crate::server::RoundStats {
        let mut stats = crate::server::RoundStats::default();
        for state in &self.states {
            stats.merge(&state.round_stats());
        }
        stats
    }

    /// Zeroes every server's Merkle statistics.
    pub fn reset_mht_stats(&self) {
        for state in &self.states {
            state.reset_mht_stats();
        }
    }

    /// Network statistics (messages/bytes/drops).
    pub fn network_stats(&self) -> &fides_net::NetworkStats {
        self.network.stats()
    }

    /// The network handle (for partition injection in tests).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Stops every server thread and joins them, then shuts down each
    /// server's durability engine — a pipelined engine drains and
    /// fsyncs everything before its writer thread exits, so a restart
    /// over the same directory recovers the complete history.
    pub fn shutdown(mut self) {
        for s in 0..self.config.n_servers {
            let env = Envelope::sign(
                &self.admin_kp,
                admin_node(),
                server_node(s),
                Message::Shutdown.encode(),
            );
            self.admin.send(env);
        }
        for t in self.threads.drain(..).flatten() {
            let _ = t.join();
        }
        for state in &self.states {
            state.shutdown_durability();
        }
    }
}

impl core::fmt::Debug for FidesCluster {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "FidesCluster(n={}, items/shard={}, batch={}, protocol={})",
            self.config.n_servers,
            self.config.items_per_shard,
            self.config.batch_size,
            self.config.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TxnOutcome;

    fn small_cluster(protocol: CommitProtocol) -> FidesCluster {
        FidesCluster::start(ClusterConfig::new(3).items_per_shard(8).protocol(protocol))
    }

    #[test]
    fn single_txn_commits_and_audits_clean() {
        let cluster = small_cluster(CommitProtocol::TfCommit);
        let mut client = cluster.client(0);
        let key = cluster.key_of(1, 3);

        let mut txn = client.begin();
        let v = client.read(&mut txn, &key).unwrap();
        assert_eq!(v.as_i64(), Some(100));
        client.write(&mut txn, &key, Value::from_i64(142)).unwrap();
        let outcome = client.commit(txn).unwrap();
        assert!(outcome.committed(), "outcome: {outcome:?}");

        // The write is visible to a second transaction.
        let mut txn2 = client.begin();
        let v2 = client.read(&mut txn2, &key).unwrap();
        assert_eq!(v2.as_i64(), Some(142));
        // Abandon txn2 (never committed).

        let report = cluster.audit();
        assert!(report.is_clean(), "{report}");
        cluster.shutdown();
    }

    #[test]
    fn cross_shard_txn_commits() {
        let cluster = small_cluster(CommitProtocol::TfCommit);
        let mut client = cluster.client(0);
        let k0 = cluster.key_of(0, 0);
        let k2 = cluster.key_of(2, 5);
        let outcome = client.run_rmw(&[k0.clone(), k2.clone()], -25).unwrap();
        assert!(outcome.committed());

        let mut txn = client.begin();
        assert_eq!(client.read(&mut txn, &k0).unwrap().as_i64(), Some(75));
        assert_eq!(client.read(&mut txn, &k2).unwrap().as_i64(), Some(75));
        assert!(cluster.audit().is_clean());
        cluster.shutdown();
    }

    #[test]
    fn twopc_baseline_commits() {
        let cluster = small_cluster(CommitProtocol::TwoPhaseCommit);
        let mut client = cluster.client(0);
        let key = cluster.key_of(0, 1);
        let outcome = client.run_rmw(std::slice::from_ref(&key), 1).unwrap();
        assert!(outcome.committed());
        let mut txn = client.begin();
        assert_eq!(client.read(&mut txn, &key).unwrap().as_i64(), Some(101));
        cluster.shutdown();
    }

    #[test]
    fn stale_read_causes_abort() {
        // Two sequential RMWs on the same key with a torn read: read
        // under an old version then commit after another write.
        let cluster = small_cluster(CommitProtocol::TfCommit);
        let mut alice = cluster.client(0);
        let mut bob = cluster.client(1);
        let key = cluster.key_of(0, 2);

        // Alice reads (observes wts 0)...
        let mut txa = alice.begin();
        let _ = alice.read(&mut txa, &key).unwrap();

        // ...Bob commits a write to the same key...
        assert!(bob
            .run_rmw(std::slice::from_ref(&key), 5)
            .unwrap()
            .committed());

        // ...then Alice tries to commit her read: stale → abort.
        alice.write(&mut txa, &key, Value::from_i64(0)).unwrap();
        let outcome = alice.commit(txa).unwrap();
        assert!(
            matches!(outcome, TxnOutcome::Aborted { .. }),
            "expected abort, got {outcome:?}"
        );
        // The abort block is logged; the audit stays clean (nothing
        // incorrect happened — the protocol *prevented* the violation).
        let report = cluster.audit();
        assert!(report.is_clean(), "{report}");
        cluster.shutdown();
    }

    #[test]
    fn batched_transactions_commit_in_one_block() {
        // A wide flush window: the batch deadline is now measured from
        // the first queued end-txn, so all four clients must submit
        // within it for the single-block assertion to be deterministic.
        let cluster = FidesCluster::start(
            ClusterConfig::new(3)
                .items_per_shard(32)
                .batch_size(4)
                .flush_interval(Duration::from_millis(250)),
        );
        // Four concurrent clients, disjoint keys → one block.
        let mut handles = Vec::new();
        for c in 0..4u32 {
            let mut client = cluster.client(c);
            let key = cluster.key_of(c % 3, c as usize);
            handles.push(std::thread::spawn(move || {
                client.run_rmw(&[key], 1).unwrap()
            }));
        }
        let outcomes: Vec<TxnOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(outcomes.iter().all(|o| o.committed()), "{outcomes:?}");
        let heights: std::collections::HashSet<u64> = outcomes
            .iter()
            .map(|o| match o {
                TxnOutcome::Committed { height, .. } => *height,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(heights.len(), 1, "all four should share one block");
        assert!(cluster.audit().is_clean());
        cluster.shutdown();
    }

    #[test]
    fn settle_converges() {
        let cluster = small_cluster(CommitProtocol::TfCommit);
        let mut client = cluster.client(0);
        let key = cluster.key_of(0, 0);
        client.run_rmw(&[key], 1).unwrap();
        assert_eq!(cluster.settle(Duration::from_secs(2)), Some(1));
        cluster.shutdown();
    }
}
