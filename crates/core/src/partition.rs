//! The key → server partition map (paper §3.1: "the data is partitioned
//! into multiple shards and distributed on these servers").
//!
//! Clients use the partitioner as the "lookup and directory service for
//! the database partitions" (§4.1); the auditor uses it to attribute an
//! incorrect read to the server storing the item.

use std::collections::HashMap;
use std::sync::Arc;

use fides_crypto::sha256::Sha256;
use fides_store::types::Key;

/// An immutable, shared partition map with a hash fallback for keys
/// created after initialization.
///
/// # Example
///
/// ```
/// use fides_core::partition::Partitioner;
/// use fides_store::Key;
///
/// let p = Partitioner::from_assignments(
///     3,
///     [(Key::new("x"), 0), (Key::new("y"), 2)],
/// );
/// assert_eq!(p.owner(&Key::new("x")), 0);
/// assert_eq!(p.owner(&Key::new("y")), 2);
/// // Unknown keys hash onto some server deterministically.
/// let o = p.owner(&Key::new("z"));
/// assert!(o < 3);
/// ```
#[derive(Clone, Debug)]
pub struct Partitioner {
    inner: Arc<PartitionInner>,
}

#[derive(Debug)]
struct PartitionInner {
    n_servers: u32,
    explicit: HashMap<Key, u32>,
}

impl Partitioner {
    /// Builds a partitioner from explicit `(key, server)` assignments.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers` is zero or an assignment names a server
    /// `≥ n_servers`.
    pub fn from_assignments(
        n_servers: u32,
        assignments: impl IntoIterator<Item = (Key, u32)>,
    ) -> Self {
        assert!(n_servers > 0, "need at least one server");
        let explicit: HashMap<Key, u32> = assignments.into_iter().collect();
        for (key, server) in &explicit {
            assert!(
                *server < n_servers,
                "key {key} assigned to nonexistent server {server}"
            );
        }
        Partitioner {
            inner: Arc::new(PartitionInner {
                n_servers,
                explicit,
            }),
        }
    }

    /// A purely hash-based partitioner (no explicit assignments).
    pub fn hashed(n_servers: u32) -> Self {
        Partitioner::from_assignments(n_servers, [])
    }

    /// Number of servers/shards.
    pub fn n_servers(&self) -> u32 {
        self.inner.n_servers
    }

    /// The server owning `key`: the explicit assignment if present,
    /// otherwise a deterministic hash of the key.
    pub fn owner(&self, key: &Key) -> u32 {
        if let Some(s) = self.inner.explicit.get(key) {
            return *s;
        }
        let digest = Sha256::digest(key.as_str().as_bytes());
        let mut v = [0u8; 4];
        v.copy_from_slice(&digest.as_bytes()[..4]);
        u32::from_be_bytes(v) % self.inner.n_servers
    }

    /// Splits keys by owning server: `result[s]` holds the keys of
    /// server `s` (order preserved).
    pub fn group_by_owner<'a>(&self, keys: impl IntoIterator<Item = &'a Key>) -> Vec<Vec<&'a Key>> {
        let mut groups = vec![Vec::new(); self.inner.n_servers as usize];
        for key in keys {
            groups[self.owner(key) as usize].push(key);
        }
        groups
    }

    /// The set of servers touched by `keys` (sorted, deduplicated).
    pub fn involved_servers<'a>(&self, keys: impl IntoIterator<Item = &'a Key>) -> Vec<u32> {
        let mut servers: Vec<u32> = keys.into_iter().map(|k| self.owner(k)).collect();
        servers.sort_unstable();
        servers.dedup();
        servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_assignments_win() {
        let p = Partitioner::from_assignments(2, [(Key::new("a"), 1)]);
        assert_eq!(p.owner(&Key::new("a")), 1);
    }

    #[test]
    fn hash_fallback_is_deterministic_and_in_range() {
        let p = Partitioner::hashed(5);
        for i in 0..100 {
            let k = Key::new(format!("key-{i}"));
            let o1 = p.owner(&k);
            let o2 = p.owner(&k);
            assert_eq!(o1, o2);
            assert!(o1 < 5);
        }
    }

    #[test]
    fn hash_fallback_spreads_keys() {
        let p = Partitioner::hashed(4);
        let mut counts = [0u32; 4];
        for i in 0..400 {
            counts[p.owner(&Key::new(format!("k{i}"))) as usize] += 1;
        }
        // Every server gets a meaningful share.
        assert!(counts.iter().all(|&c| c > 40), "skewed: {counts:?}");
    }

    #[test]
    fn involved_servers_sorted_dedup() {
        let p = Partitioner::from_assignments(
            4,
            [(Key::new("a"), 3), (Key::new("b"), 1), (Key::new("c"), 3)],
        );
        let keys = [Key::new("a"), Key::new("b"), Key::new("c")];
        assert_eq!(p.involved_servers(keys.iter()), vec![1, 3]);
    }

    #[test]
    fn group_by_owner_partitions_all_keys() {
        let p = Partitioner::from_assignments(2, [(Key::new("a"), 0), (Key::new("b"), 1)]);
        let keys = [Key::new("a"), Key::new("b")];
        let groups = p.group_by_owner(keys.iter());
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent server")]
    fn out_of_range_assignment_panics() {
        let _ = Partitioner::from_assignments(2, [(Key::new("a"), 5)]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Partitioner::hashed(0);
    }
}
