//! The repair plane: verified anti-entropy state transfer.
//!
//! Fides' protocol machinery assumed a fixed fleet at uniform height —
//! every server starts together, stays in lock-step, and a server that
//! restarts short was permanently excluded (the PR 2 limitation). This
//! module removes that assumption. A lagging or freshly-restarted
//! server:
//!
//! 1. **detects its gap** — from decision traffic arriving ahead of its
//!    log tip, or from `RepairQuery`/`RepairInfo` gossip at startup;
//! 2. **fetches missing decision blocks** from a peer in chunks, or —
//!    when every reachable peer has pruned its history below the
//!    restart height — a **checkpoint of its own shard** that peers
//!    mirrored before pruning, plus the log suffix above it;
//! 3. **re-verifies everything before applying a single byte**
//!    ([`verify_transfer`]): the transferred blocks must chain from a
//!    trusted anchor (the server's own verified tip hash, or the
//!    checkpoint's recorded tip hash which the first co-signed block's
//!    `prev_hash` must reproduce), every collective signature is
//!    checked with the batched fast path
//!    ([`fides_crypto::cosi::verify_batch`] via
//!    [`fides_ledger::validate::validate_transfer`]), and the replayed
//!    shard is cross-checked against the per-shard Merkle roots
//!    co-signed inside the blocks;
//! 4. **rejoins live rounds** — buffered decisions apply through the
//!    existing catch-up loop and the server's involved votes flip back
//!    from abort to commit.
//!
//! Byzantine discipline: a peer serving garbage cannot make the
//! repairer apply it — verification fails, the attempt is recorded as
//! [`RepairEvidence`] against the serving peer (surfaced in the audit
//! report), and the repairer retries with another peer. Conversely a
//! *repairing* server is lagging, not faulty: the auditor treats it as
//! such until the configured grace deadline.

use core::fmt;
use std::time::Instant;

use fides_crypto::schnorr::PublicKey;
use fides_crypto::Digest;
use fides_durability::ShardSnapshot;
use fides_ledger::block::{Block, Decision};
use fides_ledger::validate::{validate_transfer, TransferFault};
use fides_store::authenticated::AuthenticatedShard;
use fides_store::types::Timestamp;

use crate::messages::CommitProtocol;
use crate::partition::Partitioner;
use crate::recovery::replay_block;

/// Why a transfer from a peer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairFault {
    /// The transferred blocks fail chain/signature verification
    /// (tampered suffix, or a suffix that does not anchor to the
    /// trusted base).
    Transfer(TransferFault),
    /// The blocks verify, but replaying them leaves the shard with a
    /// Merkle root different from the one co-signed at this height —
    /// the transferred *checkpoint* carried forged data.
    RootMismatch {
        /// The first block whose co-signed root the replay missed.
        height: u64,
    },
    /// The transferred checkpoint fails its internal verification (its
    /// payload does not reproduce its recorded root).
    BadCheckpoint,
    /// The transferred blocks are correctly co-signed but do not link
    /// to the verification **base** — the base itself (a provisionally
    /// adopted local snapshot, or a transferred checkpoint's tip hash)
    /// is what disagrees with the signed chain. For an extension
    /// transfer this is *not* the serving peer's fault and must not
    /// produce evidence against it.
    BaseMismatch {
        /// The base height whose anchor the co-signed chain refutes.
        height: u64,
    },
}

impl fmt::Display for RepairFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairFault::Transfer(fault) => write!(f, "{fault}"),
            RepairFault::RootMismatch { height } => write!(
                f,
                "replayed shard root at block {height} does not match the co-signed root"
            ),
            RepairFault::BadCheckpoint => {
                write!(f, "transferred checkpoint fails its root verification")
            }
            RepairFault::BaseMismatch { height } => write!(
                f,
                "co-signed chain refutes the transfer base at height {height}"
            ),
        }
    }
}

/// One refuted transfer attempt: which peer served garbage, and what
/// the verification caught. Collected by the repairing server and
/// folded into the audit report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairEvidence {
    /// The peer that served the refused payload.
    pub peer: u32,
    /// What the verification caught.
    pub fault: RepairFault,
}

impl fmt::Display for RepairEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peer {} served a refused transfer: {}",
            self.peer, self.fault
        )
    }
}

/// The repairing-server state shared with the harness and auditor.
#[derive(Debug, Default)]
pub struct RepairShared {
    /// `true` from gap detection until the verified install completes.
    pub repairing: bool,
    /// When the current repair began (for the audit grace deadline).
    pub since: Option<Instant>,
    /// Completed verified repairs over this server's lifetime.
    pub completions: u64,
    /// Refuted transfer attempts (Byzantine peers), in detection order.
    pub evidence: Vec<RepairEvidence>,
    /// Peers' checkpoints mirrored here (origin → newest snapshot) —
    /// served back to an origin that lost its disk.
    pub mirrors: std::collections::HashMap<u32, ShardSnapshot>,
}

/// The outcome of a verified transfer: state ready to install.
#[derive(Debug)]
pub struct VerifiedTransfer {
    /// The shard with the transferred blocks replayed (on top of the
    /// transferred checkpoint when one was used).
    pub shard: AuthenticatedShard,
    /// Highest committed transaction timestamp in the verified state.
    pub last_committed: Timestamp,
}

/// The trusted anchor a transfer verifies against: the state at
/// `height` plus the hash the first transferred block must link to —
/// the receiving server's own verified tip for an extension transfer,
/// the restored checkpoint for a bootstrap transfer.
#[derive(Debug)]
pub struct TransferBase {
    /// Height the transferred run starts at.
    pub height: u64,
    /// The hash the first transferred block's `prev_hash` must equal.
    pub tip: Digest,
    /// The trusted shard state at `height` (consumed and replayed).
    pub shard: AuthenticatedShard,
    /// Highest committed transaction timestamp at `height`.
    pub last_committed: Timestamp,
}

/// Verifies a transferred block range end to end — chain anchoring,
/// batched collective signatures, and shard-root cross-checks — without
/// touching any live server state.
///
/// The root cross-check is what refutes a forged checkpoint that is
/// *internally* consistent: its data cannot reproduce the co-signed
/// per-shard root at the first commit block that touches this shard.
///
/// # Errors
///
/// A [`RepairFault`] naming what the verification caught; the caller
/// records it as evidence against the serving peer and retries
/// elsewhere.
pub fn verify_transfer(
    idx: u32,
    partitioner: &Partitioner,
    server_pks: &[PublicKey],
    protocol: CommitProtocol,
    base: TransferBase,
    blocks: &[Block],
) -> Result<VerifiedTransfer, RepairFault> {
    let verify_cosign = protocol == CommitProtocol::TfCommit;
    if let Err(fault) = validate_transfer(
        base.height,
        base.tip,
        blocks.to_vec(),
        server_pks,
        verify_cosign,
    ) {
        // Attribution: a first block that fails to *link* but carries a
        // valid collective signature proves the base anchor wrong, not
        // the transfer — the signatures decide who is lying.
        if let TransferFault::Structure(fides_ledger::log::LogError::BrokenLink) = fault {
            if let Some(first) = blocks.first() {
                if first.height == base.height
                    && (!verify_cosign || first.cosign.verify(&first.signing_bytes(), server_pks))
                {
                    return Err(RepairFault::BaseMismatch {
                        height: base.height,
                    });
                }
            }
        }
        return Err(RepairFault::Transfer(fault));
    }

    let mut shard = base.shard;
    let mut last_committed = base.last_committed;
    for block in blocks {
        if block.decision != Decision::Commit {
            continue;
        }
        replay_block(&mut shard, block, partitioner, idx, protocol);
        if let Some(ts) = block.max_txn_ts() {
            if ts > last_committed {
                last_committed = ts;
            }
        }
        if let Some(signed_root) = block.root_of(idx) {
            if shard.root() != signed_root {
                return Err(RepairFault::RootMismatch {
                    height: block.height,
                });
            }
        }
    }

    Ok(VerifiedTransfer {
        shard,
        last_committed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::cosi::{self, Witness};
    use fides_crypto::schnorr::KeyPair;
    use fides_ledger::block::{BlockBuilder, ShardRoot, TxnRecord};
    use fides_ledger::log::TamperProofLog;
    use fides_store::rwset::WriteEntry;
    use fides_store::types::{Key, Value};

    fn keys(n: u8) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(&[i, 0x77])).collect()
    }

    fn pks(keys: &[KeyPair]) -> Vec<PublicKey> {
        keys.iter().map(|k| k.public_key()).collect()
    }

    /// A co-signed chain of single-write commit blocks against one
    /// shard, with the correct speculative roots recorded.
    fn signed_history(
        n: u64,
        keys: &[KeyPair],
        shard: &mut AuthenticatedShard,
        partitioner: &Partitioner,
    ) -> Vec<Block> {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let key = Key::new("item-0");
            let value = Value::from_i64(100 + h as i64);
            let ts = Timestamp::new(h + 1, 0);
            let txn = TxnRecord {
                id: ts,
                read_set: vec![],
                write_set: vec![WriteEntry {
                    key: key.clone(),
                    new_value: value.clone(),
                    old_value: None,
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                }],
            };
            let root = shard.speculative_root(&[(key.clone(), value.clone())]);
            let unsigned = BlockBuilder::new(h, log.tip_hash())
                .txn(txn)
                .decision(Decision::Commit)
                .root(ShardRoot { server: 0, root })
                .build_unsigned();
            let record = unsigned.signing_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &h.to_be_bytes(), &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            let block = Block {
                cosign: sig,
                ..unsigned
            };
            replay_block(shard, &block, partitioner, 0, CommitProtocol::TfCommit);
            log.append(block).unwrap();
        }
        log.to_blocks()
    }

    #[test]
    fn honest_transfer_verifies_and_replays() {
        let ks = keys(3);
        let partitioner = Partitioner::from_assignments(1, [(Key::new("item-0"), 0)]);
        let base = AuthenticatedShard::new(vec![(Key::new("item-0"), Value::from_i64(100))]);
        let mut evolving = base.clone();
        let blocks = signed_history(4, &ks, &mut evolving, &partitioner);

        let verified = verify_transfer(
            0,
            &partitioner,
            &pks(&ks),
            CommitProtocol::TfCommit,
            TransferBase {
                height: 0,
                tip: Digest::ZERO,
                shard: base,
                last_committed: Timestamp::ZERO,
            },
            &blocks,
        )
        .unwrap();
        assert_eq!(verified.shard.root(), evolving.root());
        assert_eq!(verified.last_committed, Timestamp::new(4, 0));
    }

    #[test]
    fn honest_blocks_against_forged_anchor_blame_the_base_not_the_peer() {
        // Correctly co-signed blocks that fail to link to the anchor
        // prove the *anchor* wrong (a forged provisionally-adopted
        // snapshot tip): the fault must be `BaseMismatch`, never a
        // transfer fault attributable to the serving peer.
        let ks = keys(3);
        let partitioner = Partitioner::from_assignments(1, [(Key::new("item-0"), 0)]);
        let base = AuthenticatedShard::new(vec![(Key::new("item-0"), Value::from_i64(100))]);
        let mut evolving = base.clone();
        let blocks = signed_history(4, &ks, &mut evolving, &partitioner);

        let err = verify_transfer(
            0,
            &partitioner,
            &pks(&ks),
            CommitProtocol::TfCommit,
            TransferBase {
                height: 0,
                tip: Digest::new([0xBA; 32]), // forged anchor
                shard: base,
                last_committed: Timestamp::ZERO,
            },
            &blocks,
        )
        .unwrap_err();
        assert_eq!(err, RepairFault::BaseMismatch { height: 0 });
    }

    #[test]
    fn forged_base_state_caught_by_root_cross_check() {
        // The transferred blocks are genuine, but the "checkpoint" the
        // repairer was handed contains forged data on a key the suffix
        // never overwrites: the first co-signed root it replays toward
        // cannot be reproduced. (A forgery confined to already
        // overwritten versions is invisible to current-state roots — by
        // design, roots authenticate the live shard.)
        let ks = keys(3);
        let partitioner =
            Partitioner::from_assignments(1, [(Key::new("item-0"), 0), (Key::new("item-1"), 0)]);
        let population = vec![
            (Key::new("item-0"), Value::from_i64(100)),
            (Key::new("item-1"), Value::from_i64(200)),
        ];
        let base = AuthenticatedShard::new(population.clone());
        let mut evolving = base.clone();
        let blocks = signed_history(4, &ks, &mut evolving, &partitioner);

        let mut forged_population = population;
        forged_population[1].1 = Value::from_i64(666);
        let forged = AuthenticatedShard::new(forged_population);
        let err = verify_transfer(
            0,
            &partitioner,
            &pks(&ks),
            CommitProtocol::TfCommit,
            TransferBase {
                height: 0,
                tip: Digest::ZERO,
                shard: forged,
                last_committed: Timestamp::ZERO,
            },
            &blocks,
        )
        .unwrap_err();
        assert_eq!(err, RepairFault::RootMismatch { height: 0 });
    }

    #[test]
    fn tampered_suffix_refused_before_any_replay() {
        let ks = keys(3);
        let partitioner = Partitioner::from_assignments(1, [(Key::new("item-0"), 0)]);
        let base = AuthenticatedShard::new(vec![(Key::new("item-0"), Value::from_i64(100))]);
        let mut evolving = base.clone();
        let mut blocks = signed_history(4, &ks, &mut evolving, &partitioner);
        blocks[2].decision = Decision::Abort;
        for i in 3..blocks.len() {
            blocks[i].prev_hash = blocks[i - 1].hash();
        }

        let err = verify_transfer(
            0,
            &partitioner,
            &pks(&ks),
            CommitProtocol::TfCommit,
            TransferBase {
                height: 0,
                tip: Digest::ZERO,
                shard: base,
                last_committed: Timestamp::ZERO,
            },
            &blocks,
        )
        .unwrap_err();
        assert!(matches!(err, RepairFault::Transfer(_)), "{err}");
    }
}
