//! Integration tests for the verified read plane: proof-carrying
//! snapshot reads served by owners and checkpoint mirrors, Byzantine
//! refutation with audit attribution, and the repair-aware retry hint.

use std::time::{Duration, Instant};

use fides_core::client::ClientError;
use fides_core::messages::ReadRefusal;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_core::{Behavior, ReadConsistency, ReadFault, ViolationKind};
use fides_store::Key;

fn commit_rmw(client: &mut fides_core::ClientSession, keys: &[Key], delta: i64) {
    let outcome = client.run_rmw_batched(keys, delta).expect("commit");
    assert!(outcome.committed(), "{outcome:?}");
}

#[test]
fn owner_reads_verify_without_commit_rounds() {
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(16));
    let k0 = cluster.key_of(0, 1);
    let k2 = cluster.key_of(2, 5);
    let mut writer = cluster.client(0);
    commit_rmw(&mut writer, &[k0.clone(), k2.clone()], 11);
    cluster.settle(Duration::from_secs(5)).expect("settled");

    // A *different* client (fresh registry, knows only genesis) reads
    // both shards: values come back proof-verified, absent keys come
    // back proven absent, and not a single commit round runs.
    let rounds_before = cluster.round_stats().rounds;
    let mut reader = cluster.client(1);
    let phantom = Key::new("never-written");
    let values = reader
        .read_only(
            &[k0.clone(), k2.clone(), phantom.clone()],
            ReadConsistency::BoundedStaleness(0),
        )
        .expect("verified read");
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(111));
    assert_eq!(values[1].as_ref().unwrap().as_i64(), Some(111));
    assert!(values[2].is_none(), "phantom key proven absent");

    // Plenty more reads: still zero additional rounds.
    for _ in 0..10 {
        reader
            .read_only(&[k0.clone(), k2.clone()], ReadConsistency::Fresh)
            .expect("verified read");
    }
    assert_eq!(cluster.round_stats().rounds, rounds_before);

    let stats = reader.take_read_stats();
    assert!(stats.reads >= 11, "reads counted: {stats:?}");
    assert!(stats.keys_read >= 23);
    assert!(stats.verify_nanos() > 0);
    assert!(
        stats.staleness.snapshot().count_at(0) > 0,
        "fresh reads: {stats:?}"
    );

    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    cluster.shutdown();
}

#[test]
fn genesis_reads_verify_before_any_commit() {
    let cluster = FidesCluster::start(ClusterConfig::new(2).items_per_shard(8));
    let mut reader = cluster.client(0);
    let key = cluster.key_of(1, 3);
    let values = reader
        .read_only(&[key, Key::new("missing")], ReadConsistency::Fresh)
        .expect("genesis read");
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(100));
    assert!(values[1].is_none());
    assert!(cluster.audit().is_clean());
    cluster.shutdown();
}

#[test]
fn forged_value_refuted_and_attributed() {
    let key = Key::new("s001:item-000002");
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(8).behavior(
        1,
        Behavior {
            forge_read_values: vec![key.clone()],
            ..Behavior::default()
        },
    ));
    let mut reader = cluster.client(0);
    let err = reader
        .read_only(std::slice::from_ref(&key), ReadConsistency::Fresh)
        .expect_err("forged value must not verify");
    assert!(
        matches!(err, ClientError::ReadRefuted(_) | ClientError::Timeout(_)),
        "{err:?}"
    );

    let report = cluster.audit();
    let against = report.against_server(1);
    assert!(
        against
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::TamperedRead { .. })),
        "audit must pin the forger: {report}"
    );
    // No other server is accused of anything.
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(2).is_empty());
    cluster.shutdown();
}

#[test]
fn forged_absence_refuted_and_attributed() {
    let key = Key::new("s002:item-000001");
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(8).behavior(
        2,
        Behavior {
            forge_read_absence: vec![key.clone()],
            ..Behavior::default()
        },
    ));
    let mut reader = cluster.client(0);
    let err = reader
        .read_only_from(2, std::slice::from_ref(&key), ReadConsistency::Fresh)
        .expect_err("forged absence must not verify");
    match err {
        ClientError::ReadRefuted(ReadFault::Proof(_)) => {}
        other => panic!("expected a proof refutation, got {other:?}"),
    }
    let report = cluster.audit();
    assert!(report
        .against_server(2)
        .iter()
        .any(|v| matches!(&v.kind, ViolationKind::TamperedRead { .. })));
    cluster.shutdown();
}

/// Drives commits until every peer holds a checkpoint mirror of the
/// owner's shard at height ≥ `min_height`.
fn drive_until_mirrored(
    cluster: &FidesCluster,
    owner: u32,
    writer: &mut fides_core::ClientSession,
    min_height: u64,
) -> u64 {
    let key = cluster.key_of(owner, 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut committed = 0u64;
    loop {
        commit_rmw(writer, std::slice::from_ref(&key), 1);
        committed += 1;
        let mirrored = (0..cluster.config().n_servers)
            .filter(|s| *s != owner)
            .all(|s| {
                cluster
                    .server_state(s)
                    .mirror_heights()
                    .iter()
                    .any(|(origin, h)| *origin == owner && *h >= min_height)
            });
        if mirrored {
            return committed;
        }
        assert!(Instant::now() < deadline, "mirrors never formed");
    }
}

#[test]
fn mirror_served_reads_verify_within_bound() {
    let tmp = fides_durability::testutil::TempDir::new("mirror-reads");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .persistence(fides_core::PersistenceConfig::files(tmp.path()).snapshot_interval(4)),
    );
    let mut writer = cluster.client(0);
    drive_until_mirrored(&cluster, 0, &mut writer, 4);
    cluster.settle(Duration::from_secs(5)).expect("settled");

    // A client that knows the current tip (it committed) asks a NON-
    // owner peer for shard 0 under a generous bound: the peer serves
    // from its verified mirror, the proof verifies, and the audit stays
    // clean — every server is a read replica for every shard.
    let mut reader = cluster.client(1);
    let key = cluster.key_of(0, 0);
    commit_rmw(&mut reader, &[cluster.key_of(1, 1)], 1);
    let verified = reader
        .read_only_from(
            2,
            std::slice::from_ref(&key),
            ReadConsistency::BoundedStaleness(64),
        )
        .expect("mirror-served read");
    assert!(verified.values[0].is_some());
    assert!(verified.covered_height >= 4);
    assert!(verified.root_height <= verified.covered_height);

    // The generic path load-balances across owner + mirrors and always
    // verifies.
    for _ in 0..6 {
        let values = reader
            .read_only(
                std::slice::from_ref(&key),
                ReadConsistency::BoundedStaleness(64),
            )
            .expect("load-balanced read");
        assert!(values[0].is_some());
    }
    assert!(cluster.read_evidence().is_empty());
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    cluster.shutdown();
}

#[test]
fn stale_beyond_bound_serve_is_refuted_and_audited() {
    let tmp = fides_durability::testutil::TempDir::new("stale-reads");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .persistence(fides_core::PersistenceConfig::files(tmp.path()).snapshot_interval(4))
            .behavior(
                2,
                Behavior {
                    ignore_read_bounds: true,
                    ..Behavior::default()
                },
            ),
    );
    // Mirrors form at height ~4, then the chain advances well past
    // them.
    let mut writer = cluster.client(0);
    drive_until_mirrored(&cluster, 0, &mut writer, 4);
    let key = cluster.key_of(0, 0);
    let mut reader = cluster.client(1);
    for _ in 0..8 {
        commit_rmw(&mut reader, std::slice::from_ref(&key), 1);
    }
    // Land off the snapshot interval so the newest possible mirror is
    // strictly below the tip (no "mirror exactly at tip" race).
    while reader.known_tip().is_multiple_of(4) {
        commit_rmw(&mut reader, std::slice::from_ref(&key), 1);
    }
    cluster.settle(Duration::from_secs(5)).expect("settled");
    let tip = reader.known_tip();
    assert!(tip >= 12, "tip {tip}");

    // Server 2 ignores the freshness bound and serves its stale mirror
    // as if it were fresh: the client refutes it (the mirror's root
    // height is provably below the demanded coverage) and files
    // evidence against exactly server 2.
    let err = reader
        .read_only_from(2, std::slice::from_ref(&key), ReadConsistency::Fresh)
        .expect_err("stale-beyond-bound serve must be refuted");
    match err {
        ClientError::ReadRefuted(
            ReadFault::StaleBeyondBound { .. } | ReadFault::StaleClaim { .. },
        ) => {}
        other => panic!("expected a staleness refutation, got {other:?}"),
    }
    let report = cluster.audit();
    assert!(report
        .against_server(2)
        .iter()
        .any(|v| matches!(&v.kind, ViolationKind::TamperedRead { .. })));
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(1).is_empty());
    cluster.shutdown();
}

#[test]
fn mirror_reads_mid_supersede_never_tear() {
    // A reader hammers a mirror holder while the writer keeps pushing
    // new checkpoints (mirrors superseding each other). Every response
    // must verify against exactly one co-signed root — a torn mix of
    // old shard + new root (or vice versa) would fail verification and
    // file evidence.
    let tmp = fides_durability::testutil::TempDir::new("supersede-reads");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .batch_size(1)
            .persistence(fides_core::PersistenceConfig::files(tmp.path()).snapshot_interval(2)),
    );
    let mut writer = cluster.client(0);
    drive_until_mirrored(&cluster, 0, &mut writer, 2);

    let key = cluster.key_of(0, 0);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader_stop = std::sync::Arc::clone(&stop);
    let mut reader = cluster.client(1);
    let reader_key = key.clone();
    let reader_thread = std::thread::spawn(move || {
        let mut served = 0u64;
        while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
            match reader.read_only_from(
                1,
                std::slice::from_ref(&reader_key),
                ReadConsistency::BoundedStaleness(1_000),
            ) {
                Ok(verified) => {
                    assert!(verified.values[0].is_some());
                    served += 1;
                }
                // Honest refusals (cache mid-rebuild) are fine; refuted
                // reads are not.
                Err(ClientError::ReadRefused(_)) | Err(ClientError::Timeout(_)) => {}
                Err(other) => panic!("refuted mid-supersede read: {other:?}"),
            }
        }
        served
    });

    // ~20 commits → ~10 checkpoint supersedes on shard 0.
    for _ in 0..20 {
        commit_rmw(&mut writer, std::slice::from_ref(&key), 1);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served = reader_thread.join().expect("reader thread");
    assert!(served > 0, "mirror reads were served concurrently");
    assert!(
        cluster.read_evidence().is_empty(),
        "no read was torn: {:?}",
        cluster.read_evidence()
    );
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    cluster.shutdown();
}

#[test]
fn repairing_server_refuses_reads_promptly() {
    let tmp = fides_durability::testutil::TempDir::new("repairing-reads");
    let mut cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .round_timeout(Duration::from_millis(300))
            .persistence(fides_core::PersistenceConfig::files(tmp.path())),
    );
    let victim = 2u32;
    let key = cluster.key_of(victim, 0);
    let mut writer = cluster.client(0);
    for _ in 0..4 {
        commit_rmw(&mut writer, std::slice::from_ref(&key), 1);
    }
    cluster.settle(Duration::from_secs(5)).expect("settled");

    cluster.crash_server(victim);
    // The victim's disk dies with it: the restart finds nothing, so the
    // repair plane must transfer the whole chain — a real repair window
    // for the reads below to hit.
    let victim_dir = fides_core::PersistenceConfig::server_dir(tmp.path(), victim);
    std::fs::remove_dir_all(&victim_dir).expect("wipe victim disk");
    cluster.restart_server(victim).expect("restart");

    // While the victim repairs, reads against it return *promptly* —
    // either an honest `Repairing{eta}` refusal (the retry hint) or,
    // once repair installs, a verified response. They never burn the
    // op-timeout.
    let mut reader = cluster.client(1);
    reader.set_op_timeout(Duration::from_secs(2));
    let mut saw_refusal_or_ok = false;
    for _ in 0..50 {
        let t0 = Instant::now();
        match reader.read_only_from(
            victim,
            std::slice::from_ref(&key),
            ReadConsistency::BoundedStaleness(1_000),
        ) {
            Ok(_) => {
                saw_refusal_or_ok = true;
                break;
            }
            Err(ClientError::ReadRefused(ReadRefusal::Repairing { eta_hint_ms })) => {
                assert!(eta_hint_ms > 0);
                assert!(
                    t0.elapsed() < Duration::from_secs(1),
                    "refusal must be prompt"
                );
                saw_refusal_or_ok = true;
                // The generic path retargets: the owner-fallback serves
                // the read despite the repairing peer.
                let values = reader
                    .read_only(
                        std::slice::from_ref(&key),
                        ReadConsistency::BoundedStaleness(1_000),
                    )
                    .expect("fallback read");
                assert!(values[0].is_some());
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(saw_refusal_or_ok, "victim never answered reads");
    assert!(cluster.await_rejoin(victim, Duration::from_secs(30)));
    // After rejoin the victim serves verified reads again.
    let verified = reader
        .read_only_from(victim, std::slice::from_ref(&key), ReadConsistency::Fresh)
        .expect("post-rejoin read");
    assert!(verified.values[0].is_some());
    assert!(cluster.read_evidence().is_empty());
    cluster.shutdown();
}

#[test]
fn at_height_pins_a_snapshot() {
    let cluster = FidesCluster::start(ClusterConfig::new(2).items_per_shard(8));
    let key = cluster.key_of(0, 0);
    let mut writer = cluster.client(0);
    commit_rmw(&mut writer, std::slice::from_ref(&key), 1);
    cluster.settle(Duration::from_secs(5)).expect("settled");

    let mut reader = cluster.client(1);
    // Pin at the current tip (1 block applied).
    let verified = reader
        .read_only_from(0, std::slice::from_ref(&key), ReadConsistency::AtHeight(1))
        .expect("pinned read");
    assert_eq!(verified.values[0].as_ref().unwrap().as_i64(), Some(101));

    // After another commit the live state is no longer the state at
    // height 1: the owner honestly refuses the pin.
    commit_rmw(&mut writer, std::slice::from_ref(&key), 1);
    cluster.settle(Duration::from_secs(5)).expect("settled");
    let err = reader
        .read_only_from(0, std::slice::from_ref(&key), ReadConsistency::AtHeight(1))
        .expect_err("superseded pin must refuse");
    assert!(
        matches!(err, ClientError::ReadRefused(ReadRefusal::TooStale { .. })),
        "{err:?}"
    );
    assert!(cluster.read_evidence().is_empty());
    cluster.shutdown();
}
