//! Stress tests for the pipelined commit hot path: many concurrent
//! clients, Zipf-skewed keys, mixed cross-shard transactions, WAL
//! pruning below snapshots — and a mid-stream kill proving the
//! ordered-ack crash-consistency guarantee under
//! `SyncPolicy::Pipelined`.

use std::time::{Duration, Instant};

use fides_core::client::finalize_outcomes;
use fides_core::messages::CommitProtocol;
use fides_core::recovery::PersistenceConfig;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_durability::testutil::TempDir;
use fides_durability::{SyncPolicy, WalConfig};
use fides_workload::{KeyChooser, WorkloadConfig, WorkloadGenerator};

const N_SERVERS: u32 = 4;
const ITEMS_PER_SHARD: usize = 256;

fn pipelined_config(dir: &TempDir, snapshot_interval: u64) -> ClusterConfig {
    ClusterConfig::new(N_SERVERS)
        .items_per_shard(ITEMS_PER_SHARD)
        .batch_size(8)
        .protocol(CommitProtocol::TfCommit)
        .max_clients(16)
        .flush_interval(Duration::from_millis(10))
        .persistence(
            PersistenceConfig::files(dir.path())
                .wal(WalConfig {
                    // Tiny segments so pruning visibly evicts files.
                    segment_bytes: 4096,
                    sync: SyncPolicy::Pipelined,
                })
                .snapshot_interval(snapshot_interval)
                .prune_wal(true)
                .archive_pruned(true),
        )
}

/// Drives `txns_per_client` Zipf-skewed read-modify-write transactions
/// from each of `n_clients` pipelined clients (2 commits in flight
/// each), returning `(committed, aborted)`.
fn run_zipf_clients(
    cluster: &FidesCluster,
    n_clients: u32,
    txns_per_client: usize,
) -> (usize, usize) {
    let server_pks = cluster.server_pks().to_vec();
    let protocol = cluster.config().protocol;
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let mut client = cluster.client(c);
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::paper_default(N_SERVERS, ITEMS_PER_SHARD)
                .ops_per_txn(4)
                .chooser(KeyChooser::Zipfian { theta: 0.6 })
                .seed(0xC0FFEE + c as u64),
            FidesCluster::key_name,
        );
        let server_pks = server_pks.clone();
        handles.push(std::thread::spawn(move || {
            let mut pending = Vec::new();
            let mut unverified = Vec::new();
            let mut submitted = 0usize;
            while submitted < txns_per_client || !pending.is_empty() {
                while submitted < txns_per_client && pending.len() < 2 {
                    let spec = generator.next_txn();
                    let mut txn = client.begin();
                    let Ok(values) = client.read_all(&mut txn, &spec.keys) else {
                        continue;
                    };
                    let writes: Vec<_> = spec
                        .keys
                        .iter()
                        .zip(values)
                        .map(|(k, v)| {
                            (
                                k.clone(),
                                fides_store::Value::from_i64(v.as_i64().unwrap_or(0) + 1),
                            )
                        })
                        .collect();
                    if client.write_all(&mut txn, &writes).is_err() {
                        continue;
                    }
                    pending.push(client.commit_async(txn));
                    submitted += 1;
                }
                unverified.extend(
                    client.drain_outcomes(&mut pending, Instant::now() + Duration::from_millis(50)),
                );
            }
            let outcomes = finalize_outcomes(unverified, &server_pks, protocol);
            let committed = outcomes.iter().filter(|o| o.committed()).count();
            (committed, outcomes.len() - committed)
        }));
    }
    let mut committed = 0;
    let mut aborted = 0;
    for h in handles {
        let (c, a) = h.join().expect("client thread");
        committed += c;
        aborted += a;
    }
    (committed, aborted)
}

/// Concurrent Zipf-skewed commits: the audit stays clean (histories
/// serialize — the auditor replays OCC and checks the serialization
/// graph for cycles), snapshots prune the WAL, and a **clean** restart
/// reproduces every server's tip hash from disk.
#[test]
fn zipf_stress_audit_clean_and_restart_identical() {
    let dir = TempDir::new("pipeline-stress");
    let (tips, committed) = {
        let cluster = FidesCluster::start(pipelined_config(&dir, 8));
        // Zipf contention on a saturated 1-CPU host legitimately aborts
        // a large share via the §4.3.1 sequential-log rule, and the
        // abort rate swings with scheduler luck (18–20/60 at the PR 3
        // baseline, occasionally under 15 on busy CI boxes). Instead of
        // betting one wave against the scheduler, drive extra waves
        // until enough commits accumulate: the floor measures that the
        // pipeline makes progress, not single-wave throughput.
        let mut committed = 0usize;
        let mut waves = 0usize;
        while committed < 15 && waves < 4 {
            let (c, _aborted) = run_zipf_clients(&cluster, 6, 10);
            committed += c;
            waves += 1;
        }
        assert!(
            committed >= 15,
            "a solid fraction of transactions should commit after {waves} waves: {committed}"
        );
        cluster.flush();
        cluster
            .settle(Duration::from_secs(5))
            .expect("logs converge");

        // Histories serialize and every proof checks out.
        let report = cluster.audit();
        assert!(report.is_clean(), "{report}");

        let tips: Vec<_> = (0..N_SERVERS)
            .map(|s| {
                let state = cluster.server_state(s);
                (state.log().len(), state.log().tip_hash())
            })
            .collect();
        cluster.shutdown();
        (tips, committed)
    };
    assert!(committed > 0);

    // Snapshots + pruning actually bit: the WAL no longer starts at
    // record 0, and the evicted segments are parked in the archive.
    let wal_dir = PersistenceConfig::server_dir(dir.path(), 0).join("wal");
    let first_segment = std::fs::read_dir(&wal_dir)
        .expect("wal dir exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("wal-"))
        .min()
        .expect("some segment");
    assert_ne!(
        first_segment, "wal-00000000000000000000.seg",
        "WAL prefix below the snapshot should be pruned"
    );
    let archive_dir = PersistenceConfig::server_dir(dir.path(), 0).join("archive");
    assert!(
        std::fs::read_dir(&archive_dir)
            .expect("archive dir")
            .count()
            > 0,
        "pruned segments are archived for the auditor"
    );

    // Restart: recovery reads archive + live WAL, re-verifies the whole
    // chain, and reproduces the exact tips.
    let cluster = FidesCluster::start(pipelined_config(&dir, 8));
    for (s, (len, tip)) in tips.iter().enumerate() {
        let state = cluster.server_state(s as u32);
        assert_eq!(state.log().len(), *len, "server {s} length");
        assert_eq!(state.log().tip_hash(), *tip, "server {s} tip hash");
    }
    assert!(cluster.audit().is_clean());
    cluster.shutdown();
}

/// The commit-round stage breakdown tiles the measured round latency:
/// the coordinator's six stage histograms (batch formation, OCC
/// validation, Merkle update, CoSi assembly, WAL fsync hand-off,
/// outcome send) are recorded as contiguous laps of the same clock
/// that accumulates `round_nanos`, so (a) every stage reports samples
/// and (b) their sums reproduce the total to within the residual the
/// laps deliberately skip (catch-up, lock hand-offs).
#[test]
fn stage_breakdown_tiles_round_latency() {
    use fides_telemetry::Stage;

    let dir = TempDir::new("pipeline-stages");
    let cluster = FidesCluster::start(pipelined_config(&dir, 8));
    let mut committed = 0usize;
    let mut waves = 0usize;
    while committed < 15 && waves < 4 {
        let (c, _aborted) = run_zipf_clients(&cluster, 4, 10);
        committed += c;
        waves += 1;
    }
    cluster.flush();
    cluster
        .settle(Duration::from_secs(5))
        .expect("logs converge");

    let stats = cluster.round_stats();
    assert!(stats.rounds > 0);
    let metrics = cluster.server_metrics(0);
    assert_eq!(metrics.counter("commit.rounds"), stats.rounds);

    // (a) Every commit-path stage saw every round on the coordinator.
    for stage in Stage::ALL {
        let h = metrics.histogram(stage.metric_name());
        assert!(
            h.count > 0,
            "stage {} reported no samples: {:?}",
            stage.name(),
            metrics.counters
        );
    }

    // (b) The stage laps tile the measured round latency **per
    // round**. With overlapped rounds and tail stages deferred across
    // rounds (batched outcome fan-out, group-commit hand-off) the
    // per-stage sample counts no longer all equal the round count, so
    // the absolute sums cannot be compared — the per-round means still
    // tile: the summed mean stage lap lands within the residual of the
    // mean round latency (catch-up, lock hand-offs, per-lap clock
    // reads).
    let total = u64::try_from(stats.round_nanos).expect("round nanos fit");
    let round_mean = total as f64 / stats.rounds.max(1) as f64;
    let staged_mean: f64 = Stage::ALL
        .iter()
        .map(|s| {
            let h = metrics.histogram(s.metric_name());
            h.sum as f64 / h.count.max(1) as f64
        })
        .sum();
    assert!(
        staged_mean <= round_mean * 1.05,
        "mean stage laps exceed the mean round clock: {staged_mean} > {round_mean}"
    );
    let tolerance = round_mean / 5.0 + 5_000_000.0;
    assert!(
        round_mean - staged_mean < tolerance,
        "mean stage laps {staged_mean} fall more than {tolerance}ns short of {round_mean}"
    );

    // The cohorts contribute their half of the pipeline: vote-side OCC
    // validation and the apply split show up cluster-wide too.
    let cluster_metrics = cluster.metrics();
    for stage in [Stage::OccValidate, Stage::MerkleUpdate, Stage::WalFsync] {
        assert!(
            cluster_metrics.histogram(stage.metric_name()).count
                > metrics.histogram(stage.metric_name()).count,
            "cohorts recorded no {} samples",
            stage.name()
        );
    }
    // The asynchronous group-commit fsync is reported out-of-band of
    // the round clock.
    assert!(cluster_metrics.histogram("durability.fsync_ns").count > 0);
    assert!(cluster_metrics.histogram("durability.batch_blocks").count > 0);

    cluster.shutdown();
}

/// The ordered-ack guarantee under a mid-stream kill: acknowledged
/// commits survive on the coordinator's disk, every server's recovered
/// log is a hash-chain prefix of its pre-kill log, and startup's
/// verified recovery accepts the torn-down state.
#[test]
fn mid_stream_kill_recovers_acked_prefix() {
    let dir = TempDir::new("pipeline-kill");
    let config = || {
        ClusterConfig::new(N_SERVERS)
            .items_per_shard(ITEMS_PER_SHARD)
            .batch_size(4)
            .max_clients(8)
            .flush_interval(Duration::from_millis(5))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        segment_bytes: 1 << 20,
                        sync: SyncPolicy::Pipelined,
                    })
                    // No snapshots: recovery must replay the full WAL.
                    .snapshot_interval(0),
            )
    };
    let cluster = FidesCluster::start(config());

    // Wave 1: committed AND acknowledged — every outcome the clients
    // received implies the coordinator's covering fsync already ran.
    let mut acked_heights = Vec::new();
    let mut client = cluster.client(0);
    for i in 0..6 {
        let keys = vec![
            FidesCluster::key_name(i % N_SERVERS, i as usize),
            FidesCluster::key_name((i + 1) % N_SERVERS, i as usize + 2),
        ];
        let outcome = client.run_rmw_batched(&keys, 1).expect("wave-1 commit");
        if let fides_core::client::TxnOutcome::Committed { height, .. } = outcome {
            acked_heights.push(height);
        }
    }
    assert!(!acked_heights.is_empty(), "wave 1 must commit something");
    cluster
        .settle(Duration::from_secs(5))
        .expect("wave 1 settles");

    // Wave 2: submitted but never acknowledged — then the plug is
    // pulled while blocks are in flight to the WAL writer.
    let mut wave2 = Vec::new();
    for i in 0..4u64 {
        let keys = vec![FidesCluster::key_name((i % 2) as u32, 20 + i as usize)];
        let mut txn = client.begin();
        let values = client.read_all(&mut txn, &keys).expect("read");
        let writes: Vec<_> = keys
            .iter()
            .zip(values)
            .map(|(k, v)| {
                (
                    k.clone(),
                    fides_store::Value::from_i64(v.as_i64().unwrap_or(0) + 1),
                )
            })
            .collect();
        client.write_all(&mut txn, &writes).expect("write");
        wave2.push(client.commit_async(txn));
    }
    // Give the coordinator a beat to form blocks, then kill all the
    // durability engines without flushing.
    std::thread::sleep(Duration::from_millis(30));
    let durable_at_kill: Vec<_> = (0..N_SERVERS)
        .map(|s| cluster.server_state(s).durable_height().unwrap_or(0))
        .collect();
    let states: Vec<_> = (0..N_SERVERS).map(|s| cluster.server_state(s)).collect();
    for state in &states {
        state.kill_durability();
    }
    cluster.shutdown();
    // The final in-memory chains (ahead of the torn disk): everything
    // the servers had appended by the time their threads stopped.
    let pre_kill: Vec<_> = states.iter().map(|s| s.log()).collect();

    // Restart over the torn state: verified recovery must accept it.
    let cluster = FidesCluster::try_start(config()).expect("recovery after kill");
    for s in 0..N_SERVERS {
        let state = cluster.server_state(s);
        let recovered = state.log();
        let full = &pre_kill[s as usize];
        // Prefix reproduction: the recovered chain is exactly the head
        // of the pre-kill chain (same hashes, block for block).
        assert!(
            recovered.len() <= full.len(),
            "server {s} recovered more than existed"
        );
        assert!(
            recovered.len() as u64 >= durable_at_kill[s as usize],
            "server {s} lost fsync-covered blocks: {} < {}",
            recovered.len(),
            durable_at_kill[s as usize],
        );
        for (i, block) in recovered.blocks().iter().enumerate() {
            assert_eq!(
                block.hash(),
                full.blocks()[i].hash(),
                "server {s} diverges at height {i}"
            );
        }
        if recovered.len() == full.len() {
            assert_eq!(recovered.tip_hash(), full.tip_hash());
        }
    }
    // Ordered acks: every acknowledged wave-1 commit is on the
    // coordinator's recovered chain.
    let coordinator = cluster.server_state(0);
    let log = coordinator.log();
    for height in &acked_heights {
        assert!(
            log.get(*height).is_some(),
            "acked block {height} lost by the kill"
        );
    }
    cluster.shutdown();
}

/// A Byzantine cohort under `SyncPolicy::Pipelined`: a block whose
/// collective signature cannot be assembled is never durable, but the
/// clients must still receive the outcome immediately and classify it
/// as an anomaly — exactly as the inline engine behaves. (Regression:
/// deferring that outcome to a covering fsync that can never happen
/// would starve the clients into timeouts.)
#[test]
fn byzantine_cosign_under_pipelined_still_surfaces_anomaly() {
    use fides_core::behavior::Behavior;
    let dir = TempDir::new("pipeline-byzantine");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .flush_interval(Duration::from_millis(5))
            .behavior(
                2,
                Behavior {
                    corrupt_cosi_response: true,
                    ..Behavior::default()
                },
            )
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        sync: SyncPolicy::Pipelined,
                        ..WalConfig::default()
                    })
                    .snapshot_interval(0),
            ),
    );
    let mut client = cluster.client(0);
    let key = FidesCluster::key_name(0, 1);
    let outcome = client
        .run_rmw_batched(&[key], 1)
        .expect("outcome must arrive promptly despite the invalid cosign");
    assert!(outcome.is_anomaly(), "got {outcome:?}");
    // The coordinator identified the culprit (Lemma 4) and nothing was
    // logged or persisted for the failed round.
    let coordinator = cluster.server_state(0);
    assert!(!coordinator.cosi_culprits().is_empty());
    assert_eq!(coordinator.log().len(), 0);
    cluster.shutdown();
}

/// Mixed protocol sanity under the pipelined policy: the in-memory
/// backend exercises the same pipeline (writer thread, ordered acks)
/// without a filesystem, and a restart over the shared memory "disks"
/// recovers identically.
#[test]
fn pipelined_memory_backend_restart() {
    use fides_core::recovery::MemoryCluster;
    let disks = MemoryCluster::new();
    let config = |disks: &MemoryCluster| {
        ClusterConfig::new(3)
            .items_per_shard(16)
            .batch_size(2)
            .flush_interval(Duration::from_millis(5))
            .persistence(
                PersistenceConfig::memory(disks.clone())
                    .wal(WalConfig {
                        sync: SyncPolicy::Pipelined,
                        ..WalConfig::default()
                    })
                    .snapshot_interval(4),
            )
    };
    let (tip, len) = {
        let cluster = FidesCluster::start(config(&disks));
        let mut client = cluster.client(0);
        for i in 0..5 {
            let key = FidesCluster::key_name(i % 3, i as usize);
            assert!(client
                .run_rmw_batched(&[key], 1)
                .expect("commit")
                .committed());
        }
        cluster.settle(Duration::from_secs(5)).expect("settles");
        assert!(cluster.audit().is_clean());
        let state = cluster.server_state(0);
        let log = state.log();
        let out = (log.tip_hash(), log.len());
        cluster.shutdown();
        out
    };
    let cluster = FidesCluster::start(config(&disks));
    let state = cluster.server_state(0);
    assert_eq!(state.log().len(), len);
    assert_eq!(state.log().tip_hash(), tip);
    cluster.shutdown();
}
