//! Fault-injection test suite: every malicious behaviour from the
//! paper's §3.2/§5 is injected into a running cluster and must be (a)
//! detected and (b) attributed to the misbehaving server — the paper's
//! two audit guarantees (§3.3).

use std::time::Duration;

use fides_core::audit::ViolationKind;
use fides_core::behavior::Behavior;
use fides_core::messages::Refusal;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_store::{Key, Value};

fn commit_some_txns(cluster: &FidesCluster, n: usize) {
    let mut client = cluster.client(0);
    for i in 0..n {
        let key = cluster.key_of((i % 3) as u32, i % 4);
        let outcome = client.run_rmw(&[key], 1).unwrap();
        assert!(outcome.committed(), "setup txn {i} must commit");
    }
}

// ----------------------------------------------------------------------
// Scenario 1 (§5): incorrect reads — Lemma 1.
// ----------------------------------------------------------------------

#[test]
fn stale_read_detected_and_attributed() {
    let victim_key_holder = 1u32;
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        victim_key_holder,
        Behavior {
            stale_read_keys: vec![Key::new("s001:item-000002")],
            ..Behavior::default()
        },
    ));
    let key = cluster.key_of(victim_key_holder, 2);
    let mut client = cluster.client(0);

    // T1 establishes a version (write 100 -> 150).
    assert!(client
        .run_rmw(std::slice::from_ref(&key), 50)
        .unwrap()
        .committed());
    // T2 reads: the malicious server returns the stale value (100) with
    // up-to-date timestamps — exactly Figure 10. The stale value flows
    // into T2's logged read set.
    assert!(client
        .run_rmw(std::slice::from_ref(&key), 7)
        .unwrap()
        .committed());

    let report = cluster.audit();
    assert!(!report.is_clean(), "stale read must be detected");
    let against = report.against_server(victim_key_holder);
    assert!(
        against.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::IncorrectRead { key: k, .. } if *k == key
        )),
        "expected IncorrectRead against server {victim_key_holder}: {report}"
    );
    // No false accusations against benign servers.
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(2).is_empty());
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Scenario 3 (§5): datastore corruption — Lemma 2.
// ----------------------------------------------------------------------

#[test]
fn skipped_write_detected_as_datastore_corruption() {
    let faulty = 2u32;
    let key = Key::new("s002:item-000001");
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        faulty,
        Behavior {
            skip_write_keys: vec![key.clone()],
            ..Behavior::default()
        },
    ));
    let mut client = cluster.client(0);
    // The write commits globally but the faulty server never applies it.
    assert!(client
        .run_rmw(std::slice::from_ref(&key), 11)
        .unwrap()
        .committed());

    let report = cluster.audit();
    let against = report.against_server(faulty);
    assert!(
        against.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::DatastoreCorruption { key: k, .. } if *k == key
        )),
        "expected DatastoreCorruption against server {faulty}: {report}"
    );
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(1).is_empty());
    cluster.shutdown();
}

#[test]
fn post_commit_corruption_detected_at_precise_version() {
    let faulty = 1u32;
    let key = Key::new("s001:item-000000");
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        faulty,
        Behavior {
            corrupt_after_commit: Some((key.clone(), Value::from_i64(999_999))),
            ..Behavior::default()
        },
    ));
    let mut client = cluster.client(0);
    assert!(client
        .run_rmw(std::slice::from_ref(&key), 5)
        .unwrap()
        .committed());

    let report = cluster.audit();
    let against = report.against_server(faulty);
    assert!(
        against
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DatastoreCorruption { .. })),
        "expected corruption report: {report}"
    );
    // The first violation pinpoints the block of the corrupted version.
    let first = report.first().unwrap();
    assert_eq!(first.height, Some(0));
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Scenario 2 (§5): incorrect block creation — benign cohort defends
// itself by refusing to co-sign (Lemma 5 machinery).
// ----------------------------------------------------------------------

#[test]
fn fake_root_refused_by_benign_cohort() {
    let victim = 1u32;
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        0, // the coordinator lies
        Behavior {
            fake_root_for: Some(victim),
            ..Behavior::default()
        },
    ));
    let mut client = cluster.client(0);
    let key = cluster.key_of(victim, 1);
    let mut txn = client.begin();
    let v = client.read(&mut txn, &key).unwrap();
    client
        .write(&mut txn, &key, Value::from_i64(v.as_i64().unwrap() + 1))
        .unwrap();
    let outcome = client.commit(txn).unwrap();
    // The benign victim refuses; no valid co-sign can exist; the client
    // detects the anomaly (§4.3.1 phase 5).
    assert!(outcome.is_anomaly(), "got {outcome:?}");

    let state = cluster.server_state(victim);
    let refusals = state.refusals();
    assert!(
        refusals.iter().any(|(_, r)| *r == Refusal::RootMismatch),
        "victim should have refused with RootMismatch: {refusals:?}"
    );
    // Nothing was appended: the unsigned block never enters any log.
    assert_eq!(cluster.settle(Duration::from_secs(1)), Some(0));
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Lemma 4: wrong CoSi values — the coordinator identifies the culprit.
// ----------------------------------------------------------------------

#[test]
fn corrupt_cosi_response_culprit_identified() {
    let culprit = 2u32;
    let cluster = FidesCluster::start(ClusterConfig::new(4).items_per_shard(4).behavior(
        culprit,
        Behavior {
            corrupt_cosi_response: true,
            ..Behavior::default()
        },
    ));
    let mut client = cluster.client(0);
    let key = cluster.key_of(0, 0);
    let outcome = client.run_rmw(&[key], 1).unwrap();
    assert!(outcome.is_anomaly(), "got {outcome:?}");

    let coord = cluster.server_state(0);
    let culprits = coord.cosi_culprits();
    assert_eq!(culprits.len(), 1);
    assert_eq!(culprits[0].1, vec![culprit]);
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Lemma 5: atomicity violation (equivocation) — correct servers detect
// the inconsistent challenge.
// ----------------------------------------------------------------------

#[test]
fn equivocating_coordinator_detected() {
    let cluster = FidesCluster::start(ClusterConfig::new(4).items_per_shard(4).behavior(
        0,
        Behavior {
            equivocate_decision: true,
            ..Behavior::default()
        },
    ));
    let mut client = cluster.client(0);
    let key = cluster.key_of(1, 0);
    let outcome = client.run_rmw(&[key], 1).unwrap();
    assert!(outcome.is_anomaly(), "got {outcome:?}");

    // The cohorts that received the abort block refuse (BadChallenge or
    // the root-consistency check, both manifestations of Lemma 5).
    let mut refusal_count = 0;
    for s in 1..4 {
        refusal_count += cluster.server_state(s).refusals().len();
    }
    assert!(refusal_count > 0, "at least one cohort must refuse");
    // Atomicity preserved: nobody appended either block.
    assert_eq!(cluster.settle(Duration::from_secs(1)), Some(0));
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Lemmas 6–7: log tampering, reordering and truncation.
// ----------------------------------------------------------------------

#[test]
fn tampered_log_detected_at_height() {
    let faulty = 1u32;
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        faulty,
        Behavior {
            tamper_log_at: Some(2),
            ..Behavior::default()
        },
    ));
    commit_some_txns(&cluster, 5);

    let report = cluster.audit();
    let against = report.against_server(faulty);
    assert!(
        against
            .iter()
            .any(|v| { matches!(&v.kind, ViolationKind::TamperedLog(fault) if fault.height == 2) }),
        "expected TamperedLog at height 2: {report}"
    );
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(2).is_empty());
    cluster.shutdown();
}

#[test]
fn reordered_log_detected() {
    let faulty = 2u32;
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        faulty,
        Behavior {
            reorder_log: Some((1, 3)),
            ..Behavior::default()
        },
    ));
    commit_some_txns(&cluster, 5);

    let report = cluster.audit();
    assert!(
        report
            .against_server(faulty)
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::TamperedLog(_))),
        "expected reorder detection: {report}"
    );
    cluster.shutdown();
}

#[test]
fn truncated_log_detected_as_incomplete() {
    let faulty = 0u32; // even the coordinator can omit its tail
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(4).behavior(
        faulty,
        Behavior {
            truncate_log_to: Some(2),
            ..Behavior::default()
        },
    ));
    commit_some_txns(&cluster, 5);

    let report = cluster.audit();
    assert!(
        report.against_server(faulty).iter().any(|v| matches!(
            &v.kind,
            ViolationKind::IncompleteLog {
                len: 2,
                canonical_len: 5
            }
        )),
        "expected IncompleteLog 2/5: {report}"
    );
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Multiple simultaneous faults: detection requires only one correct
// server (§3.2, n > f).
// ----------------------------------------------------------------------

#[test]
fn n_minus_one_faulty_logs_still_audited() {
    // Servers 0 and 1 truncate their logs; server 2 is the single
    // correct server the model requires.
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(4)
            .behavior(
                0,
                Behavior {
                    truncate_log_to: Some(1),
                    ..Behavior::default()
                },
            )
            .behavior(
                1,
                Behavior {
                    tamper_log_at: Some(0),
                    ..Behavior::default()
                },
            ),
    );
    commit_some_txns(&cluster, 4);

    let report = cluster.audit();
    assert_eq!(report.canonical_len, 4, "correct log found via server 2");
    assert!(!report.against_server(0).is_empty());
    assert!(!report.against_server(1).is_empty());
    assert!(report.against_server(2).is_empty());
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Crash/partition: TFCommit is blocking (§4.3.1); our implementation
// surfaces the stall as a client-visible failure instead of hanging.
// ----------------------------------------------------------------------

#[test]
fn partitioned_cohort_stalls_commitment() {
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(4)
            .round_timeout(Duration::from_millis(200)),
    );
    // Cut the coordinator off from cohort 2 (both directions).
    cluster
        .network()
        .partition_pair(fides_net::NodeId::new(0), fides_net::NodeId::new(2));

    let mut client = cluster.client(0);
    client.set_op_timeout(Duration::from_secs(3));
    let key = cluster.key_of(1, 0);
    let result = client.run_rmw(std::slice::from_ref(&key), 1);
    // Either the coordinator rejected the batch after its vote timeout
    // (client exhausts retries) or the client timed out waiting.
    assert!(result.is_err(), "commitment must not succeed: {result:?}");

    // Heal and verify the system recovers.
    cluster.network().heal();
    let mut client2 = cluster.client(1);
    let outcome = client2.run_rmw(&[key], 1).unwrap();
    assert!(outcome.committed());
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Honest-cluster sanity: no false positives at scale.
// ----------------------------------------------------------------------

#[test]
fn honest_cluster_audits_clean_after_many_txns() {
    let cluster = FidesCluster::start(ClusterConfig::new(4).items_per_shard(16).batch_size(4));
    let mut handles = Vec::new();
    for c in 0..4u32 {
        let mut client = cluster.client(c);
        let keys: Vec<Key> = (0..4).map(|s| cluster.key_of(s, c as usize * 2)).collect();
        handles.push(std::thread::spawn(move || {
            let mut committed = 0;
            for _ in 0..10 {
                if client.run_rmw(&keys, 1).unwrap().committed() {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 40, "all transactions commit");
    cluster.flush();
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    cluster.shutdown();
}
