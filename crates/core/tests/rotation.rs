//! Rotating-leadership integration tests: the `height % n` leader
//! schedule must change *who* drives each commit round without changing
//! *what* the cluster agrees on.
//!
//! * Chain equivalence — a rotating cluster running the same
//!   deterministic workload as a fixed-coordinator cluster produces a
//!   byte-identical co-signed chain (the leader's identity never leaks
//!   into the signed bytes; the deterministic CoSi nonces and the
//!   canonical block encoding are leader-agnostic).
//! * Speculative-OCC safety — with rounds overlapped across rotating
//!   leaders, no committed transaction ever read a stale version:
//!   replaying the committed chain in height order, every read's `wts`
//!   matches the newest committed write below it.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fides_core::client::finalize_outcomes;
use fides_core::messages::CommitProtocol;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_crypto::encoding::Encodable;
use fides_ledger::block::{Block, Decision};
use fides_store::{Key, Timestamp};

const N_SERVERS: u32 = 4;
const ITEMS_PER_SHARD: usize = 64;

fn config(rotate: bool) -> ClusterConfig {
    ClusterConfig::new(N_SERVERS)
        .items_per_shard(ITEMS_PER_SHARD)
        .protocol(CommitProtocol::TfCommit)
        .rotate_leaders(rotate)
        .batch_size(1)
        .max_clients(8)
}

/// One client, strictly sequential read-modify-write commits over a
/// deterministic key schedule: with `batch_size(1)` every transaction
/// terminates in its own block, so the chain the cluster builds is a
/// pure function of the workload — independent of timers and scheduler
/// interleaving.
fn run_sequential_workload(cluster: &FidesCluster) -> Vec<Block> {
    let mut client = cluster.client(0);
    for i in 0..(3 * N_SERVERS as usize) {
        let keys = vec![
            FidesCluster::key_name((i % N_SERVERS as usize) as u32, i % ITEMS_PER_SHARD),
            FidesCluster::key_name(
                ((i + 1) % N_SERVERS as usize) as u32,
                (i + 3) % ITEMS_PER_SHARD,
            ),
        ];
        let outcome = client.run_rmw_batched(&keys, 1).expect("commit");
        assert!(outcome.committed(), "sequential txn {i} must commit");
    }
    cluster.flush();
    cluster
        .settle(Duration::from_secs(5))
        .expect("logs converge");
    assert!(cluster.audit().is_clean());
    cluster.server_state(0).log().blocks().to_vec()
}

/// The tentpole's differential guarantee: rotation changes the leader
/// schedule, not the agreed history. The same deterministic workload
/// driven through a fixed-coordinator cluster and a rotating cluster
/// yields byte-identical co-signed blocks — and under rotation the
/// leadership really did spread (every server led its `height % n`
/// share of the rounds).
#[test]
fn rotating_chain_byte_identical_to_fixed_coordinator() {
    let fixed_blocks = {
        let cluster = FidesCluster::start(config(false));
        let blocks = run_sequential_workload(&cluster);
        cluster.shutdown();
        blocks
    };

    let cluster = FidesCluster::start(config(true));
    let rotating_blocks = run_sequential_workload(&cluster);
    for s in 0..N_SERVERS {
        let led = cluster.server_metrics(s).counter("commit.rounds_led");
        assert!(led > 0, "server {s} never led a round under rotation");
    }
    cluster.shutdown();

    assert_eq!(
        fixed_blocks.len(),
        rotating_blocks.len(),
        "both schedules terminate the same rounds"
    );
    assert!(
        fixed_blocks.len() as u32 >= N_SERVERS,
        "enough blocks to rotate through every leader"
    );
    for (fixed, rotating) in fixed_blocks.iter().zip(&rotating_blocks) {
        assert_eq!(
            fixed.encode(),
            rotating.encode(),
            "block {} differs between schedules",
            fixed.height
        );
    }
}

/// Overlapped speculative OCC under rotation never commits a stale
/// read. Conflict-heavy pipelined clients keep several commits in
/// flight while leadership rotates every height; afterwards the
/// committed chain is replayed in height order against a last-writer
/// map — every committed read must carry the `wts` of the newest
/// committed write below its block (the §4.3.1 certification rule,
/// checked here independently of the auditor).
#[test]
fn overlapped_rotation_never_commits_stale_reads() {
    let cluster = FidesCluster::start(
        config(true)
            .batch_size(8)
            .flush_interval(Duration::from_millis(5)),
    );
    let server_pks = cluster.server_pks().to_vec();
    let protocol = cluster.config().protocol;

    let mut handles = Vec::new();
    for c in 0..6u32 {
        let mut client = cluster.client(c);
        let server_pks = server_pks.clone();
        handles.push(std::thread::spawn(move || {
            let mut pending = Vec::new();
            let mut unverified = Vec::new();
            let mut submitted = 0usize;
            // A deliberately tiny key window (8 keys per shard) so
            // clients collide constantly — the speculative OCC filter
            // and revalidation on apply both stay busy.
            while submitted < 15 || !pending.is_empty() {
                while submitted < 15 && pending.len() < 2 {
                    let i = submitted + c as usize;
                    let keys = vec![
                        FidesCluster::key_name((i % N_SERVERS as usize) as u32, i % 8),
                        FidesCluster::key_name(((i + 1) % N_SERVERS as usize) as u32, (i + 3) % 8),
                    ];
                    let mut txn = client.begin();
                    let Ok(values) = client.read_all(&mut txn, &keys) else {
                        continue;
                    };
                    let writes: Vec<_> = keys
                        .iter()
                        .zip(values)
                        .map(|(k, v)| {
                            (
                                k.clone(),
                                fides_store::Value::from_i64(v.as_i64().unwrap_or(0) + 1),
                            )
                        })
                        .collect();
                    if client.write_all(&mut txn, &writes).is_err() {
                        continue;
                    }
                    pending.push(client.commit_async(txn));
                    submitted += 1;
                }
                unverified.extend(
                    client.drain_outcomes(&mut pending, Instant::now() + Duration::from_millis(50)),
                );
            }
            let outcomes = finalize_outcomes(unverified, &server_pks, protocol);
            outcomes.iter().filter(|o| o.committed()).count()
        }));
    }
    let committed: usize = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    assert!(committed > 0, "contended workload must make progress");

    cluster.flush();
    cluster
        .settle(Duration::from_secs(5))
        .expect("logs converge");
    assert!(cluster.audit().is_clean());

    // Leadership spread even under the contended pipelined load.
    let leaders = (0..N_SERVERS)
        .filter(|&s| cluster.server_metrics(s).counter("commit.rounds_led") > 0)
        .count();
    assert!(leaders > 1, "rotation never moved the leader");

    // Independent stale-read replay over the committed chain.
    let log = cluster.server_state(0).log();
    let mut last_write: HashMap<Key, Timestamp> = HashMap::new();
    let mut committed_txns = 0usize;
    for block in log.blocks() {
        if block.decision != Decision::Commit {
            continue;
        }
        for txn in &block.txns {
            for read in &txn.read_set {
                let newest = last_write
                    .get(&read.key)
                    .copied()
                    .unwrap_or(Timestamp::ZERO);
                assert_eq!(
                    read.wts, newest,
                    "txn {:?} at height {} committed a stale read of {:?}",
                    txn.id, block.height, read.key
                );
            }
            for write in &txn.write_set {
                last_write.insert(write.key.clone(), txn.id);
            }
        }
        committed_txns += block.txns.len();
    }
    assert!(committed_txns >= committed, "committed txns all on chain");
    cluster.shutdown();
}
