//! Crash/recovery integration tests: commit transactions, crash the
//! cluster (drop every server), restart from persisted state, and
//! assert the recovered system is byte-identical to the pre-crash one —
//! plus the refusal paths for corrupted and tampered disks.

use std::time::Duration;

use fides_core::recovery::{MemoryCluster, PersistenceConfig, ServerStartError};
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_crypto::Digest;
use fides_durability::testutil::TempDir;
use fides_durability::{crc32, RecoveryError, SyncPolicy, WalConfig};

/// Small segments so every test exercises rotation; no fsync so the
/// suite stays fast (crash-consistency of fsync itself isn't testable
/// from user space anyway).
fn test_wal_config() -> WalConfig {
    WalConfig {
        segment_bytes: 2048,
        sync: SyncPolicy::NoFsync,
    }
}

fn persisted_config(persistence: PersistenceConfig, n: u32) -> ClusterConfig {
    ClusterConfig::new(n)
        .items_per_shard(8)
        .persistence(persistence.wal(test_wal_config()))
}

/// Commits `count` read-modify-write transactions, each touching two
/// shards (when available).
fn commit_txns(cluster: &FidesCluster, count: usize) {
    let n = cluster.config().n_servers;
    let mut client = cluster.client(0);
    for i in 0..count {
        let keys = if n > 1 {
            vec![
                cluster.key_of(i as u32 % n, i % 8),
                cluster.key_of((i as u32 + 1) % n, i % 8),
            ]
        } else {
            vec![cluster.key_of(0, i % 8)]
        };
        let outcome = client.run_rmw(&keys, 1).expect("protocol completes");
        assert!(outcome.committed(), "txn {i}: {outcome:?}");
    }
    cluster
        .settle(Duration::from_secs(5))
        .expect("logs converge");
}

/// Per-server `(log length, tip hash, shard root)` fingerprint.
fn fingerprint(cluster: &FidesCluster) -> Vec<(usize, Digest, Digest)> {
    (0..cluster.config().n_servers)
        .map(|s| {
            let state = cluster.server_state(s);
            let log = state.log();
            (log.len(), log.tip_hash(), state.with_shard(|s| s.root()))
        })
        .collect()
}

#[test]
fn restart_reproduces_logs_and_roots() {
    let dir = TempDir::new("recovery-restart");
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(3);
    let config = persisted_config(persistence, 3);

    let before = {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 8);
        let fp = fingerprint(&cluster);
        cluster.shutdown(); // the "crash": all in-memory state is gone
        fp
    };
    assert!(before.iter().all(|(len, _, _)| *len == 8));

    // Restart over the same directory: WAL + snapshot recovery.
    let cluster = FidesCluster::start(config);
    let after = fingerprint(&cluster);
    assert_eq!(after, before, "recovered state must match pre-crash state");

    // The recovered cluster keeps serving: more commits, clean audit.
    commit_txns(&cluster, 3);
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    assert!(fingerprint(&cluster).iter().all(|(len, _, _)| *len == 11));
    cluster.shutdown();
}

#[test]
fn restart_recovers_on_memory_backend_too() {
    // The same crash/recovery flow over the in-memory backend: the
    // MemoryCluster handle outlives the cluster, like a disk.
    let disks = MemoryCluster::new();
    let persistence = PersistenceConfig::memory(disks.clone()).snapshot_interval(2);
    let config = persisted_config(persistence, 3);

    let before = {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 5);
        let fp = fingerprint(&cluster);
        cluster.shutdown();
        fp
    };

    let cluster = FidesCluster::start(config);
    assert_eq!(fingerprint(&cluster), before);
    commit_txns(&cluster, 2);
    assert!(cluster.audit().is_clean());
    cluster.shutdown();
}

/// The newest WAL segment file of `server` under `root`.
fn last_segment(root: &std::path::Path, server: u32) -> std::path::PathBuf {
    let wal_dir = PersistenceConfig::server_dir(root, server).join("wal");
    let mut segments: Vec<_> = std::fs::read_dir(&wal_dir)
        .expect("wal dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

#[test]
fn truncated_tail_is_repaired_on_restart() {
    let dir = TempDir::new("recovery-torn");
    // No snapshots: a snapshot above the surviving log length would
    // (correctly) refuse startup, but here we want the repair path.
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(0);
    let config = persisted_config(persistence, 1);

    let tip_before_last = {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 3);
        let state = cluster.server_state(0);
        let tip = state.log().get(1).expect("block 1").hash();
        cluster.shutdown();
        tip
    };

    // Crash mid-write: chop bytes off the final record of the WAL.
    let segment = last_segment(dir.path(), 0);
    let len = std::fs::metadata(&segment).expect("segment metadata").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .expect("open segment");
    file.set_len(len - 5).expect("truncate segment");
    drop(file);

    // Restart repairs the tail: the half-written block is discarded,
    // everything before it survives.
    let cluster = FidesCluster::start(config);
    {
        let state = cluster.server_state(0);
        let log = state.log();
        assert_eq!(log.len(), 2, "torn last block dropped");
        assert_eq!(log.tip_hash(), tip_before_last);
    }
    // And the server keeps appending from the repaired tip.
    commit_txns(&cluster, 1);
    assert_eq!(cluster.server_state(0).log().len(), 3);
    assert!(cluster.audit().is_clean());
    cluster.shutdown();
}

#[test]
fn flipped_byte_in_wal_refuses_startup() {
    let dir = TempDir::new("recovery-flip");
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(0);
    let config = persisted_config(persistence, 3);
    {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 6);
        cluster.shutdown();
    }

    // Flip one byte in the middle of server 1's WAL (not the tail).
    let segment = {
        let wal_dir = PersistenceConfig::server_dir(dir.path(), 1).join("wal");
        let mut segs: Vec<_> = std::fs::read_dir(wal_dir)
            .expect("wal dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        segs[0].clone()
    };
    let mut bytes = std::fs::read(&segment).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&segment, &bytes).expect("write tampered segment");

    let err = FidesCluster::try_start(config).expect_err("startup must be refused");
    let msg = err.to_string();
    assert!(msg.contains("server 1"), "{msg}");
    assert!(msg.contains("refusing startup"), "{msg}");
    assert!(
        matches!(
            err,
            ServerStartError::Recovery {
                server: 1,
                source: RecoveryError::Wal(_)
            }
        ),
        "{err:?}"
    );
}

#[test]
fn tampered_block_with_valid_crc_refuses_startup() {
    use fides_durability::wal::{RECORD_HEADER_BYTES, SEGMENT_HEADER_BYTES};

    let dir = TempDir::new("recovery-tamper");
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(0);
    let config = persisted_config(persistence, 3);
    {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 4);
        cluster.shutdown();
    }

    // A smarter attacker: flip a byte inside the first record's block
    // payload *and* fix up the CRC so the WAL layer is fooled. The
    // collective-signature re-verification still catches it.
    let segment = {
        let wal_dir = PersistenceConfig::server_dir(dir.path(), 2).join("wal");
        let mut segs: Vec<_> = std::fs::read_dir(wal_dir)
            .expect("wal dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        segs[0].clone()
    };
    let mut bytes = std::fs::read(&segment).expect("read segment");
    let header = SEGMENT_HEADER_BYTES as usize;
    let len = u32::from_be_bytes(bytes[header..header + 4].try_into().unwrap()) as usize;
    let payload_start = header + RECORD_HEADER_BYTES as usize;
    // Flip a byte deep in the payload (past the height field, inside
    // the transaction data), then recompute the checksum.
    bytes[payload_start + len / 2] ^= 0x01;
    let new_crc = crc32(&bytes[payload_start..payload_start + len]);
    bytes[header + 4..header + 8].copy_from_slice(&new_crc.to_be_bytes());
    std::fs::write(&segment, &bytes).expect("write tampered segment");

    let err = FidesCluster::try_start(config).expect_err("startup must be refused");
    match err {
        // Either the chain re-validation or — if the flip hit encoding
        // structure — the block decode refuses; both are startup
        // refusals naming server 2.
        ServerStartError::Recovery { server, ref source } => {
            assert_eq!(server, 2);
            assert!(
                matches!(
                    source,
                    RecoveryError::Tampered(_)
                        | RecoveryError::BrokenChain(_)
                        | RecoveryError::Wal(_)
                ),
                "{source:?}"
            );
        }
        other => panic!("unexpected error: {other:?}"),
    }
    assert!(err.to_string().contains("refusing startup"));
}

#[test]
fn forged_snapshot_refuses_startup() {
    let dir = TempDir::new("recovery-snapforge");
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(2);
    let config = persisted_config(persistence, 1);
    {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 4);
        cluster.shutdown();
    }

    // Corrupt the snapshot payload (value bytes) — the CRC catches it.
    let snap_dir = PersistenceConfig::server_dir(dir.path(), 0).join("snapshots");
    let snap = std::fs::read_dir(&snap_dir)
        .expect("snapshot dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "fsnap"))
        .expect("snapshot written");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let at = bytes.len() - 8;
    bytes[at] ^= 0x02;
    std::fs::write(&snap, &bytes).expect("write forged snapshot");

    let err = FidesCluster::try_start(config).expect_err("startup must be refused");
    assert!(
        matches!(
            err,
            ServerStartError::Recovery {
                server: 0,
                source: RecoveryError::Snapshot(_)
            }
        ),
        "{err:?}"
    );
}

#[test]
fn twopc_cluster_restarts_from_wal() {
    use fides_core::messages::CommitProtocol;

    // The 2PC baseline logs unsigned blocks and keeps no Merkle tree;
    // its recovery skips the cosign pass and never snapshots, replaying
    // the full log store-only.
    let dir = TempDir::new("recovery-2pc");
    let persistence = PersistenceConfig::files(dir.path()).snapshot_interval(2);
    let config = persisted_config(persistence, 2).protocol(CommitProtocol::TwoPhaseCommit);

    let before = {
        let cluster = FidesCluster::start(config.clone());
        commit_txns(&cluster, 5);
        let fp = fingerprint(&cluster);
        cluster.shutdown();
        fp
    };

    let cluster = FidesCluster::start(config);
    assert_eq!(fingerprint(&cluster), before);
    commit_txns(&cluster, 2);
    assert!(fingerprint(&cluster).iter().all(|(len, _, _)| *len == 7));
    cluster.shutdown();
}

#[test]
fn snapshot_plus_suffix_replay_matches_full_replay() {
    // Two identical histories, one recovered through a snapshot +
    // suffix, one through full-log replay — the recovered states must
    // agree (and with the live pre-crash state).
    let dir_snap = TempDir::new("recovery-snap");
    let dir_full = TempDir::new("recovery-full");
    let mk = |dir: &TempDir, interval: u64| {
        persisted_config(
            PersistenceConfig::files(dir.path()).snapshot_interval(interval),
            2,
        )
    };

    let mut fps = Vec::new();
    for (dir, interval) in [(&dir_snap, 2), (&dir_full, 0)] {
        let config = mk(dir, interval);
        let before = {
            let cluster = FidesCluster::start(config.clone());
            commit_txns(&cluster, 7);
            let fp = fingerprint(&cluster);
            cluster.shutdown();
            fp
        };
        let cluster = FidesCluster::start(config);
        assert_eq!(fingerprint(&cluster), before);
        fps.push(fingerprint(&cluster));
        cluster.shutdown();
    }
    assert_eq!(fps[0], fps[1], "snapshot path and full-replay path agree");
}
