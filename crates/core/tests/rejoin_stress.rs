//! Repair-plane stress tests: a server killed mid-run restarts short
//! (torn WAL, or total disk loss — including below every peer's
//! pruned-WAL floor, forcing checkpoint transfer), rejoins through
//! verified anti-entropy state transfer, and the final audit is clean
//! with identical tip hashes on all servers. A Byzantine peer serving a
//! tampered suffix or forged checkpoint is refuted and reported as
//! audit evidence; a repairing server is lagging, not faulty, until
//! the grace deadline.

use std::time::Duration;

use fides_core::audit::ViolationKind;
use fides_core::behavior::Behavior;
use fides_core::recovery::PersistenceConfig;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_durability::{SyncPolicy, WalConfig};
use fides_store::Key;

const N_SERVERS: u32 = 4;
const ITEMS: usize = 16;

/// Commits `n` single-key RMW transactions spread across all shards.
fn commit_txns(cluster: &FidesCluster, client_id: u32, n: usize) -> usize {
    let mut client = cluster.client(client_id);
    let mut committed = 0;
    for i in 0..n {
        let keys = vec![FidesCluster::key_name(i as u32 % N_SERVERS, i % ITEMS)];
        if let Ok(outcome) = client.run_rmw_batched(&keys, 1) {
            if outcome.committed() {
                committed += 1;
            }
        }
    }
    committed
}

fn tips(cluster: &FidesCluster) -> Vec<(u64, fides_crypto::Digest)> {
    (0..N_SERVERS)
        .map(|s| {
            let log = cluster.server_state(s).log();
            (log.next_height(), log.tip_hash())
        })
        .collect()
}

fn assert_identical_tips(cluster: &FidesCluster) {
    let tips = tips(cluster);
    assert!(
        tips.iter().all(|t| *t == tips[0]),
        "all servers must share one tip: {tips:?}"
    );
}

/// A server killed mid-run loses its entire disk, restarts at height 0,
/// and rejoins through verified block transfer (peers hold the full
/// log): identical tips, a clean audit, and the repaired server serves
/// subsequent rounds. Quorum-durable acks ride the same run: every
/// outcome the clients saw was covered by a majority of fsyncs.
#[test]
fn killed_server_rejoins_via_block_transfer() {
    let dir = fides_durability::testutil::TempDir::new("rejoin-blocks");
    let victim = N_SERVERS - 1;
    let config = || {
        ClusterConfig::new(N_SERVERS)
            .items_per_shard(ITEMS)
            .batch_size(2)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(300))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        sync: SyncPolicy::Pipelined,
                        ..WalConfig::default()
                    })
                    .snapshot_interval(0)
                    .quorum_acks(true),
            )
    };
    let mut cluster = FidesCluster::start(config());

    // Phase 1: real traffic, quorum-acked outcomes.
    let committed = commit_txns(&cluster, 0, 10);
    assert!(committed >= 8, "phase-1 commits: {committed}");
    cluster.settle(Duration::from_secs(5)).expect("settles");
    let height_before = cluster.server_state(0).next_height();
    assert!(height_before > 0);

    // Kill the victim mid-run (durability torn, thread gone), then its
    // disk dies entirely.
    cluster.crash_server(victim);
    let victim_dir = PersistenceConfig::server_dir(dir.path(), victim);
    std::fs::remove_dir_all(&victim_dir).expect("wipe victim disk");

    // Restart: verified recovery finds an empty disk, the startup
    // gossip discovers the gap, and the repair plane transfers and
    // re-verifies the whole chain.
    cluster.restart_server(victim).expect("restart");
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "victim must finish repairing"
    );
    let state = cluster.server_state(victim);
    assert!(state.repair_completions() >= 1, "repair actually ran");
    assert!(state.repair_evidence().is_empty(), "honest peers");
    assert_eq!(state.next_height(), height_before);
    assert_identical_tips(&cluster);

    // The repaired server serves subsequent rounds — including writes
    // landing on its own shard.
    let mut client = cluster.client(1);
    let key = FidesCluster::key_name(victim, 3);
    let outcome = client.run_rmw_batched(&[key], 7).expect("post-rejoin txn");
    assert!(outcome.committed(), "{outcome:?}");
    let more = commit_txns(&cluster, 2, 6);
    assert!(more >= 5, "post-rejoin commits: {more}");
    cluster.settle(Duration::from_secs(5)).expect("resettles");

    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    assert!(report.lagging.is_empty());
    assert_identical_tips(&cluster);
    cluster.shutdown();
}

/// Total disk loss **below every peer's pruned-WAL floor**: the peers
/// deleted their history below their snapshots (no archive), so blocks
/// alone cannot rebuild the victim's shard. The repair plane falls back
/// to checkpoint transfer — the victim fetches its own mirrored shard
/// image back from a peer, anchors it to the co-signed suffix, and
/// rejoins. The audit then runs over suffix logs, seeding its replay
/// from the surrendered (and chain-bound) checkpoints, and stays clean.
#[test]
fn disk_loss_below_pruned_floor_rejoins_via_checkpoint_transfer() {
    let dir = fides_durability::testutil::TempDir::new("rejoin-checkpoint");
    let victim = 2u32;
    let config = || {
        ClusterConfig::new(N_SERVERS)
            .items_per_shard(ITEMS)
            .batch_size(2)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(500))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        // Tiny segments so pruning actually evicts the
                        // prefix below each snapshot.
                        segment_bytes: 512,
                        sync: SyncPolicy::Batch,
                    })
                    .snapshot_interval(4)
                    .prune_wal(true)
                    // No archive: pruned history is *gone* — only the
                    // mirrored checkpoints keep the fleet repairable.
                    .archive_pruned(false),
            )
    };

    // Phase 1: enough traffic for snapshots (heights 4, 8, ...) to be
    // saved, mirrored to peers, and the WAL pruned beneath them.
    let height_before = {
        let cluster = FidesCluster::start(config());
        let committed = commit_txns(&cluster, 0, 12);
        assert!(committed >= 10, "phase-1 commits: {committed}");
        cluster.settle(Duration::from_secs(5)).expect("settles");
        // Every peer holds a mirror of the victim's shard.
        for s in 0..N_SERVERS {
            if s == victim {
                continue;
            }
            let mirrors = cluster.server_state(s).mirror_heights();
            assert!(
                mirrors
                    .iter()
                    .any(|(origin, h)| *origin == victim && *h >= 4),
                "server {s} should mirror the victim's checkpoint: {mirrors:?}"
            );
        }
        let h = cluster.server_state(0).next_height();
        cluster.shutdown();
        h
    };

    // The pruning actually bit: peers' WALs no longer start at 0.
    let peer_wal = PersistenceConfig::server_dir(dir.path(), 0).join("wal");
    let first_segment = std::fs::read_dir(&peer_wal)
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("wal-"))
        .min()
        .expect("some segment");
    assert_ne!(
        first_segment, "wal-00000000000000000000.seg",
        "peers must have pruned their prefix"
    );

    // The victim's disk dies entirely — its own snapshots included.
    std::fs::remove_dir_all(PersistenceConfig::server_dir(dir.path(), victim))
        .expect("wipe victim disk");

    // Phase 2: restart the fleet. Peers recover suffix logs bound to
    // their snapshots; the victim comes up empty, below everyone's
    // floor, and must take the checkpoint-transfer path.
    let cluster = FidesCluster::start(config());
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "victim must rejoin via checkpoint transfer"
    );
    let state = cluster.server_state(victim);
    assert!(state.repair_completions() >= 1);
    assert_eq!(state.next_height(), height_before);
    assert_identical_tips(&cluster);

    // The victim's shard carries its pre-crash state back: a phase-1
    // counter it owns reads with its incremented value.
    let mut client = cluster.client(0);
    let victim_key = FidesCluster::key_name(victim, victim as usize % ITEMS);
    let mut txn = client.begin();
    let value = client.read(&mut txn, &victim_key).expect("read back");
    assert!(
        value.as_i64().is_some_and(|v| v > 100),
        "pre-crash write must survive the disk loss: {value:?}"
    );

    // Subsequent rounds commit on all four servers and the audit —
    // seeded from the surrendered checkpoints — is clean.
    let more = commit_txns(&cluster, 1, 8);
    assert!(more >= 6, "post-rejoin commits: {more}");
    cluster.settle(Duration::from_secs(5)).expect("resettles");
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    assert!(
        report.canonical_base > 0,
        "the audit ran over suffix logs: base {}",
        report.canonical_base
    );
    assert_identical_tips(&cluster);
    cluster.shutdown();
}

/// Byzantine repair peers: servers 0 and 1 serve tampered suffixes to a
/// rejoining server. The verification refutes both (nothing tampered is
/// ever applied), evidence is recorded and surfaced by the audit
/// against the precise peers, and the repair completes through the
/// honest peer once it becomes reachable.
#[test]
fn tampered_transfer_refuted_and_reported() {
    let dir = fides_durability::testutil::TempDir::new("rejoin-byzantine");
    let victim = 3u32;
    let tamper = Behavior {
        tamper_repair_blocks: true,
        ..Behavior::default()
    };
    let config = |behaviors: bool| {
        let mut config = ClusterConfig::new(N_SERVERS)
            .items_per_shard(ITEMS)
            .batch_size(2)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(300))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        sync: SyncPolicy::Batch,
                        ..WalConfig::default()
                    })
                    .snapshot_interval(0),
            );
        if behaviors {
            config = config
                .behavior(0, tamper.clone())
                .behavior(1, tamper.clone());
        }
        config
    };

    // Honest phase builds history.
    let height_before = {
        let cluster = FidesCluster::start(config(false));
        let committed = commit_txns(&cluster, 0, 8);
        assert!(committed >= 6);
        cluster.settle(Duration::from_secs(5)).expect("settles");
        let h = cluster.server_state(0).next_height();
        cluster.shutdown();
        h
    };

    // Servers 0 and 1 turn Byzantine on the repair plane. The victim is
    // crashed, its disk wiped, and the honest peer (2) made unreachable
    // *before* the victim's restart gossip runs — it must try the
    // liars first.
    let mut cluster = FidesCluster::start(config(true));
    cluster.crash_server(victim);
    std::fs::remove_dir_all(PersistenceConfig::server_dir(dir.path(), victim))
        .expect("wipe victim disk");
    cluster
        .network()
        .partition_pair(fides_net::NodeId::new(victim), fides_net::NodeId::new(2));
    cluster.restart_server(victim).expect("restart");

    // Both Byzantine peers get refuted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let evidence = cluster.server_state(victim).repair_evidence();
        let peers: std::collections::HashSet<u32> = evidence.iter().map(|e| e.peer).collect();
        if peers.contains(&0) && peers.contains(&1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "both tampering peers must be refuted: {evidence:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Nothing tampered was applied: the victim is still repairing.
    assert!(cluster.server_state(victim).is_repairing());

    // Heal: the honest peer finishes the job.
    cluster.network().heal();
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "repair must complete via the honest peer"
    );
    assert_eq!(cluster.server_state(victim).next_height(), height_before);
    assert_identical_tips(&cluster);

    // The audit reports the tampering peers — and nobody else.
    let report = cluster.audit();
    assert!(
        !report.against_server(0).is_empty() && !report.against_server(1).is_empty(),
        "evidence against both Byzantine peers: {report}"
    );
    assert!(report
        .violations
        .iter()
        .all(|v| matches!(v.kind, ViolationKind::TamperedTransfer { .. })));
    assert!(report.against_server(2).is_empty());
    assert!(report.against_server(victim).is_empty());
    cluster.shutdown();
}

/// A snapshot found AHEAD of a torn WAL is adopted provisionally: the
/// server starts in `Repairing` instead of refusing startup, repairs
/// the missing suffix from its peers, and rejoins. While it is behind
/// and repairing, the audit lists it as lagging instead of accusing it
/// of an incomplete log — until the grace deadline, after which the
/// missing tail counts as an omission again.
#[test]
fn snapshot_ahead_of_torn_wal_starts_repairing_and_lagging_is_excused() {
    let dir = fides_durability::testutil::TempDir::new("rejoin-provisional");
    let victim = 1u32;
    let config = || {
        ClusterConfig::new(3)
            .items_per_shard(ITEMS)
            .batch_size(1)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(300))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        sync: SyncPolicy::Batch,
                        ..WalConfig::default()
                    })
                    .snapshot_interval(4),
            )
    };
    let mut cluster = FidesCluster::start(config());
    {
        let mut client = cluster.client(0);
        for i in 0..6 {
            let keys = vec![FidesCluster::key_name(i % 3, i as usize)];
            assert!(client.run_rmw_batched(&keys, 1).expect("txn").committed());
        }
    }
    cluster.settle(Duration::from_secs(5)).expect("settles");
    let height_before = cluster.server_state(0).next_height();
    assert!(height_before >= 6);

    // Crash the victim, destroy its WAL but leave its snapshot (height
    // 4): the old recovery refused this disk (snapshot ahead of the
    // log); the repair plane adopts it provisionally. The victim stays
    // partitioned so we can observe the lagging state before repair
    // completes.
    cluster.crash_server(victim);
    std::fs::remove_dir_all(PersistenceConfig::server_dir(dir.path(), victim).join("wal"))
        .expect("tear the victim's WAL");
    for peer in [0u32, 2] {
        cluster
            .network()
            .partition_pair(fides_net::NodeId::new(victim), fides_net::NodeId::new(peer));
    }
    cluster.restart_server(victim).expect("provisional restart");
    let state = cluster.server_state(victim);
    assert!(
        state.is_repairing(),
        "a provisionally adopted snapshot starts the server in Repairing"
    );
    assert_eq!(state.next_height(), 4, "adopted at the snapshot height");

    // Within the grace window the audit excuses the short log...
    let report = cluster.audit();
    assert!(report.lagging.contains(&victim), "{report}");
    assert!(
        report.against_server(victim).is_empty(),
        "a repairing server is lagging, not faulty: {report}"
    );

    // ...but past the deadline the omission counts.
    cluster.set_repair_grace(Duration::ZERO);
    let strict = cluster.audit();
    cluster.set_repair_grace(Duration::from_secs(30));
    assert!(
        strict
            .against_server(victim)
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::IncompleteLog { .. })),
        "past the grace deadline the short log is an omission: {strict}"
    );

    // Heal → the repair plane confirms the adopted checkpoint against
    // the chain and fetches the missing suffix.
    cluster.network().heal();
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "victim must rejoin after healing"
    );
    assert_eq!(cluster.server_state(victim).next_height(), height_before);
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    assert!(report.lagging.is_empty());

    // And it serves rounds again.
    let mut client = cluster.client(1);
    let key = FidesCluster::key_name(victim, 2);
    assert!(client
        .run_rmw_batched(std::slice::from_ref(&key), 3)
        .expect("post-rejoin txn")
        .committed());
    cluster.shutdown();
}

/// A forged checkpoint mirror is refuted by the repairer: the peer
/// serves a doctored shard image, the internal root verification
/// catches it, evidence lands against the peer, and the repair
/// completes through an honest peer's mirror.
#[test]
fn forged_checkpoint_mirror_refuted() {
    let dir = fides_durability::testutil::TempDir::new("rejoin-forged-mirror");
    let victim = 3u32;
    let liar = 0u32;
    let config = |byzantine: bool| {
        let mut config = ClusterConfig::new(N_SERVERS)
            .items_per_shard(ITEMS)
            .batch_size(2)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(300))
            .persistence(
                PersistenceConfig::files(dir.path())
                    .wal(WalConfig {
                        segment_bytes: 512,
                        sync: SyncPolicy::Batch,
                    })
                    .snapshot_interval(4)
                    .prune_wal(true)
                    .archive_pruned(false),
            );
        if byzantine {
            config = config.behavior(
                liar,
                Behavior {
                    tamper_repair_checkpoint: true,
                    ..Behavior::default()
                },
            );
        }
        config
    };
    {
        let cluster = FidesCluster::start(config(false));
        let committed = commit_txns(&cluster, 0, 12);
        assert!(committed >= 10);
        cluster.settle(Duration::from_secs(5)).expect("settles");
        cluster.shutdown();
    }
    std::fs::remove_dir_all(PersistenceConfig::server_dir(dir.path(), victim))
        .expect("wipe victim disk");

    let cluster = FidesCluster::start(config(true));
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "repair completes despite the forged mirror"
    );
    // If the liar was consulted, its forged checkpoint was refuted (the
    // repair may also have routed around it entirely — evidence, when
    // present, must name the liar).
    let evidence = cluster.server_state(victim).repair_evidence();
    assert!(
        evidence.iter().all(|e| e.peer == liar),
        "only the liar may be accused: {evidence:?}"
    );
    assert_identical_tips(&cluster);
    let key = Key::new(format!("s{victim:03}:item-{:06}", victim as usize % ITEMS));
    let mut client = cluster.client(0);
    let mut txn = client.begin();
    let value = client.read(&mut txn, &key).expect("read back");
    assert!(value.as_i64().is_some());
    cluster.shutdown();
}
