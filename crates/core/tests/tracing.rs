//! fides-trace integration tests: causal span trees across the commit
//! pipeline, and the liveness watchdog against a stalled leader.
//!
//! * Span-tree assembly — a fully-sampled commit produces one tree per
//!   transaction whose edges match the message flow (client root →
//!   commit round → coordinator stages / cohort work), and whose
//!   coordinator stage spans measure the same intervals as the
//!   `commit.stage.*` histograms.
//! * Watchdog — a leader that collects every vote and then goes silent
//!   (`Behavior::stall_after_votes`) is declared stalled by the
//!   cohorts' round-progress watchdogs within 2× the round timeout,
//!   and the flight-recorder dump names the stalled height and leader.

use std::time::{Duration, Instant};

use fides_core::messages::CommitProtocol;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_core::Behavior;
use fides_telemetry::trace::{assemble, to_chrome_json, CLIENT_TAG_BASE};
use fides_telemetry::{Span, Stage};

const N_SERVERS: u32 = 4;
const ITEMS_PER_SHARD: usize = 64;

fn config() -> ClusterConfig {
    ClusterConfig::new(N_SERVERS)
        .items_per_shard(ITEMS_PER_SHARD)
        .protocol(CommitProtocol::TfCommit)
        .batch_size(1)
        .max_clients(8)
}

/// A read-modify-write spec touching two shards, so the traced round
/// has real cohort work on servers other than the coordinator.
fn cross_shard_keys(i: usize) -> Vec<fides_store::Key> {
    vec![
        FidesCluster::key_name((i % N_SERVERS as usize) as u32, i % ITEMS_PER_SHARD),
        FidesCluster::key_name(
            ((i + 1) % N_SERVERS as usize) as u32,
            (i + 3) % ITEMS_PER_SHARD,
        ),
    ]
}

#[test]
fn traced_commit_assembles_cross_server_span_tree() {
    // Every commit sampled. The sampler reads this once per client, at
    // construction; the variable is process-global, which is fine —
    // extra sampled traffic from a concurrent test only adds spans to
    // sinks nobody snapshots.
    std::env::set_var("FIDES_TRACE_SAMPLE", "1");
    let cluster = FidesCluster::start(config());
    let mut client = cluster.client(0);
    let outcome = client
        .run_rmw_batched(&cross_shard_keys(0), 1)
        .expect("commit");
    assert!(outcome.committed());
    cluster.flush();
    cluster
        .settle(Duration::from_secs(5))
        .expect("logs converge");
    // Read the coordinator's stage histograms before shutdown: with
    // one commit and `batch_size(1)` there was exactly one round, so
    // each histogram's sum is that round's single stage lap.
    let coord_metrics = cluster.server_metrics(0);

    let mut spans = cluster.dump_traces();
    spans.extend(client.spans());
    cluster.shutdown();

    let trees = assemble(&spans);
    let tree = trees
        .iter()
        .find(|t| t.span("client.commit").is_some())
        .expect("a traced commit retained its client root");

    // Edges match the message flow: client root → commit round →
    // stage/cohort spans.
    let root = tree.root().expect("client root");
    assert_eq!(root.name, "client.commit");
    assert!(root.node >= CLIENT_TAG_BASE, "root recorded by the client");
    let round = tree.span("commit.round").expect("round span");
    assert_eq!(round.parent, root.span_id, "round hangs off client root");
    assert_eq!(round.node, 0, "fixed coordinator led the round");
    // Only the starts nest: the outcome fans out *during* the round
    // (OutcomeSend precedes the round span's close), so the client can
    // close its root before the coordinator closes the round.
    assert!(root.start_ns <= round.start_ns);

    // All six commit stages on the coordinator, each a child of the
    // round span, each measuring the same interval as the coordinator's
    // stage histogram (two clock reads apart, so give microseconds of
    // scheduling noise a wide berth).
    for stage in Stage::ALL {
        let stage_spans: Vec<&Span> = tree
            .spans
            .iter()
            .filter(|s| s.name == stage.metric_name())
            .collect();
        let coord = stage_spans
            .iter()
            .find(|s| s.node == 0)
            .unwrap_or_else(|| panic!("no coordinator span for {}", stage.metric_name()));
        assert_eq!(
            coord.parent,
            round.span_id,
            "{} parent",
            stage.metric_name()
        );
        let hist = coord_metrics.histogram(stage.metric_name());
        let tolerance = (hist.sum / 4).max(5_000_000);
        assert!(
            coord.duration_ns().abs_diff(hist.sum) <= tolerance,
            "{}: span {} ns vs histogram {} ns",
            stage.metric_name(),
            coord.duration_ns(),
            hist.sum
        );
    }

    // Cohort-side work landed in the same tree, attributed to other
    // servers and hung off the round span via the envelope context.
    for name in ["cohort.occ_validate", "cohort.cosi_respond"] {
        let cohort = tree
            .spans
            .iter()
            .find(|s| s.name == name && s.node != 0 && s.node < CLIENT_TAG_BASE)
            .unwrap_or_else(|| panic!("no cohort span {name}"));
        assert_eq!(cohort.parent, round.span_id, "{name} parent");
    }

    // The export is well-formed Chrome trace-event JSON (CI validates
    // it with a real parser; this is the cheap structural check).
    let json = to_chrome_json(&tree.spans);
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"client.commit\""));
    assert!(json.contains("\"commit.stage.wal_fsync\""));
}

#[test]
fn watchdog_declares_stalled_leader_within_two_round_timeouts() {
    let round_timeout = Duration::from_millis(200);
    let cluster = FidesCluster::start(
        config()
            .flush_interval(Duration::from_millis(5))
            .round_timeout(round_timeout)
            .behavior(
                0,
                Behavior {
                    stall_after_votes: true,
                    ..Behavior::default()
                },
            ),
    );
    let mut client = cluster.client(0);
    let keys = cross_shard_keys(0);
    let mut txn = client.begin();
    let values = client.read_all(&mut txn, &keys).expect("reads");
    let writes: Vec<_> = keys
        .iter()
        .zip(values)
        .map(|(k, v)| {
            (
                k.clone(),
                fides_store::Value::from_i64(v.as_i64().unwrap_or(0) + 1),
            )
        })
        .collect();
    client.write_all(&mut txn, &writes).expect("writes");

    // The leader collects every vote for this round, then goes silent;
    // the cohorts are left holding live CoSi witnesses.
    let t0 = Instant::now();
    let _abandoned = client.commit_async(txn);
    let stall = loop {
        let found = (1..N_SERVERS).find_map(|s| cluster.stall_log(s).stalls().into_iter().next());
        if let Some(stall) = found {
            break stall;
        }
        assert!(
            t0.elapsed() <= 2 * round_timeout,
            "no stall declared within 2x the round timeout"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(t0.elapsed() <= 2 * round_timeout, "detection too slow");
    assert_eq!(stall.leader, 0, "the fixed coordinator is the leader");
    assert_eq!(stall.height, 0, "the first round is the stalled one");
    assert!(
        stall.waited_ms >= round_timeout.as_millis() as u64 * 9 / 10,
        "stall declared before the timeout elapsed: {} ms",
        stall.waited_ms
    );

    // The flight-recorder dump names the stalled height and leader and
    // captured the cohort's inflight state.
    let dump = (1..N_SERVERS)
        .flat_map(|s| cluster.stall_log(s).dumps())
        .next()
        .expect("a cohort dumped its flight recorder");
    assert_eq!(dump.stall, stall);
    let rendered = dump.render();
    assert!(
        rendered.contains("stall at height 0 (leader 0"),
        "dump must name the stalled height and leader:\n{rendered}"
    );
    assert!(
        dump.notes.iter().any(|n| n.contains("witness")),
        "dump notes the live CoSi witnesses: {:?}",
        dump.notes
    );

    // The stall is also visible as a metric, for the export plane.
    let stalls: u64 = (0..N_SERVERS)
        .map(|s| cluster.server_metrics(s).counter("watchdog.stalls"))
        .sum();
    assert!(stalls >= 1, "watchdog.stalls counter never moved");
    cluster.shutdown();
}
