/root/repo/target/release/deps/fides_bench-38cb59e3f1ff1787.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfides_bench-38cb59e3f1ff1787.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfides_bench-38cb59e3f1ff1787.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
