/root/repo/target/release/deps/fig13-d648475c959dedc4.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-d648475c959dedc4: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
