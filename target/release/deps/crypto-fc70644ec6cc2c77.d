/root/repo/target/release/deps/crypto-fc70644ec6cc2c77.d: crates/bench/benches/crypto.rs

/root/repo/target/release/deps/crypto-fc70644ec6cc2c77: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
