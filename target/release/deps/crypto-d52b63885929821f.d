/root/repo/target/release/deps/crypto-d52b63885929821f.d: crates/bench/benches/crypto.rs

/root/repo/target/release/deps/crypto-d52b63885929821f: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
