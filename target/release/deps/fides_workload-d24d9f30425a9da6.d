/root/repo/target/release/deps/fides_workload-d24d9f30425a9da6.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libfides_workload-d24d9f30425a9da6.rlib: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libfides_workload-d24d9f30425a9da6.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
