/root/repo/target/release/deps/fig14-7afceb2b3ab095cf.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-7afceb2b3ab095cf: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
