/root/repo/target/release/deps/fig12-ab60c561f9ed7d7c.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-ab60c561f9ed7d7c: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
