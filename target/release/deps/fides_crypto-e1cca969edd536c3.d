/root/repo/target/release/deps/fides_crypto-e1cca969edd536c3.d: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs

/root/repo/target/release/deps/libfides_crypto-e1cca969edd536c3.rlib: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs

/root/repo/target/release/deps/libfides_crypto-e1cca969edd536c3.rmeta: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs

crates/crypto/src/lib.rs:
crates/crypto/src/cosi.rs:
crates/crypto/src/encoding.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/point.rs:
crates/crypto/src/schnorr.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/field.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/arith.rs:
