/root/repo/target/release/deps/field-ea6aa79f8a4149a0.d: crates/bench/benches/field.rs

/root/repo/target/release/deps/field-ea6aa79f8a4149a0: crates/bench/benches/field.rs

crates/bench/benches/field.rs:
