/root/repo/target/release/deps/fides_ledger-1c8b9ea22858bbac.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/release/deps/libfides_ledger-1c8b9ea22858bbac.rlib: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/release/deps/libfides_ledger-1c8b9ea22858bbac.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
