/root/repo/target/release/deps/profbatch-1db540aeacfca760.d: crates/bench/src/bin/profbatch.rs

/root/repo/target/release/deps/profbatch-1db540aeacfca760: crates/bench/src/bin/profbatch.rs

crates/bench/src/bin/profbatch.rs:
