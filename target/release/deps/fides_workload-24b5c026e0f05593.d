/root/repo/target/release/deps/fides_workload-24b5c026e0f05593.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libfides_workload-24b5c026e0f05593.rlib: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libfides_workload-24b5c026e0f05593.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
