/root/repo/target/release/deps/fides_net-58b725c060840f67.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libfides_net-58b725c060840f67.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libfides_net-58b725c060840f67.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/sim.rs:
crates/net/src/transport.rs:
