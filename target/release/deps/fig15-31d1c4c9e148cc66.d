/root/repo/target/release/deps/fig15-31d1c4c9e148cc66.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-31d1c4c9e148cc66: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
