/root/repo/target/release/deps/fig14-5c8525cefd7f5d88.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-5c8525cefd7f5d88: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
