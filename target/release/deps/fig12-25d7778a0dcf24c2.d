/root/repo/target/release/deps/fig12-25d7778a0dcf24c2.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-25d7778a0dcf24c2: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
