/root/repo/target/release/deps/fides_store-e09fb96c6f1008d9.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/release/deps/libfides_store-e09fb96c6f1008d9.rlib: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/release/deps/libfides_store-e09fb96c6f1008d9.rmeta: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
