/root/repo/target/release/deps/criterion-91da1f0066d3273d.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-91da1f0066d3273d.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-91da1f0066d3273d.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
