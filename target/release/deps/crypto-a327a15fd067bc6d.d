/root/repo/target/release/deps/crypto-a327a15fd067bc6d.d: crates/bench/benches/crypto.rs

/root/repo/target/release/deps/crypto-a327a15fd067bc6d: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
