/root/repo/target/release/deps/merkle-20a06a52b52a9c48.d: crates/bench/benches/merkle.rs

/root/repo/target/release/deps/merkle-20a06a52b52a9c48: crates/bench/benches/merkle.rs

crates/bench/benches/merkle.rs:
