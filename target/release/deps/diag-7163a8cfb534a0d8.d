/root/repo/target/release/deps/diag-7163a8cfb534a0d8.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-7163a8cfb534a0d8: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
