/root/repo/target/release/deps/fides_core-805bfc4780b57097.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

/root/repo/target/release/deps/libfides_core-805bfc4780b57097.rlib: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

/root/repo/target/release/deps/libfides_core-805bfc4780b57097.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/behavior.rs:
crates/core/src/client.rs:
crates/core/src/messages.rs:
crates/core/src/occ.rs:
crates/core/src/partition.rs:
crates/core/src/server.rs:
crates/core/src/system.rs:
