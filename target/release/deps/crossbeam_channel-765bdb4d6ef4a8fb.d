/root/repo/target/release/deps/crossbeam_channel-765bdb4d6ef4a8fb.d: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-765bdb4d6ef4a8fb.rlib: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-765bdb4d6ef4a8fb.rmeta: crates/shims/crossbeam-channel/src/lib.rs

crates/shims/crossbeam-channel/src/lib.rs:
