/root/repo/target/release/deps/fides_ordserv-a7d8655023d505bc.d: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/release/deps/libfides_ordserv-a7d8655023d505bc.rlib: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/release/deps/libfides_ordserv-a7d8655023d505bc.rmeta: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

crates/ordserv/src/lib.rs:
crates/ordserv/src/ordering.rs:
crates/ordserv/src/pbft.rs:
crates/ordserv/src/proposal.rs:
