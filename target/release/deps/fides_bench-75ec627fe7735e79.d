/root/repo/target/release/deps/fides_bench-75ec627fe7735e79.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfides_bench-75ec627fe7735e79.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfides_bench-75ec627fe7735e79.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
