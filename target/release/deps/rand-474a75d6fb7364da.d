/root/repo/target/release/deps/rand-474a75d6fb7364da.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-474a75d6fb7364da.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-474a75d6fb7364da.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
