/root/repo/target/release/deps/fig15-054c9d39c8969a2a.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-054c9d39c8969a2a: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
