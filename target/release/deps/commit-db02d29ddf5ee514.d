/root/repo/target/release/deps/commit-db02d29ddf5ee514.d: crates/bench/benches/commit.rs

/root/repo/target/release/deps/commit-db02d29ddf5ee514: crates/bench/benches/commit.rs

crates/bench/benches/commit.rs:
