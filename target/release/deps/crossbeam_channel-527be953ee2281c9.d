/root/repo/target/release/deps/crossbeam_channel-527be953ee2281c9.d: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-527be953ee2281c9.rlib: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-527be953ee2281c9.rmeta: crates/shims/crossbeam-channel/src/lib.rs

crates/shims/crossbeam-channel/src/lib.rs:
