/root/repo/target/release/deps/fig13-7fd6906acf86cc6f.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-7fd6906acf86cc6f: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
