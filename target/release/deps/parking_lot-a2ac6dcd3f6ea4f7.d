/root/repo/target/release/deps/parking_lot-a2ac6dcd3f6ea4f7.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2ac6dcd3f6ea4f7.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2ac6dcd3f6ea4f7.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
