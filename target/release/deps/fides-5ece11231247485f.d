/root/repo/target/release/deps/fides-5ece11231247485f.d: src/lib.rs

/root/repo/target/release/deps/libfides-5ece11231247485f.rlib: src/lib.rs

/root/repo/target/release/deps/libfides-5ece11231247485f.rmeta: src/lib.rs

src/lib.rs:
