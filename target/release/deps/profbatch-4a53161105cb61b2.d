/root/repo/target/release/deps/profbatch-4a53161105cb61b2.d: crates/bench/src/bin/profbatch.rs

/root/repo/target/release/deps/profbatch-4a53161105cb61b2: crates/bench/src/bin/profbatch.rs

crates/bench/src/bin/profbatch.rs:
