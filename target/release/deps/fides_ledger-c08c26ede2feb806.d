/root/repo/target/release/deps/fides_ledger-c08c26ede2feb806.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/release/deps/libfides_ledger-c08c26ede2feb806.rlib: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/release/deps/libfides_ledger-c08c26ede2feb806.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
