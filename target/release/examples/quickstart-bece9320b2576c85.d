/root/repo/target/release/examples/quickstart-bece9320b2576c85.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bece9320b2576c85: examples/quickstart.rs

examples/quickstart.rs:
