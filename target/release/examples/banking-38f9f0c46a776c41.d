/root/repo/target/release/examples/banking-38f9f0c46a776c41.d: examples/banking.rs

/root/repo/target/release/examples/banking-38f9f0c46a776c41: examples/banking.rs

examples/banking.rs:
