/root/repo/target/release/examples/byzantine_audit-2371a6247c4110d9.d: examples/byzantine_audit.rs

/root/repo/target/release/examples/byzantine_audit-2371a6247c4110d9: examples/byzantine_audit.rs

examples/byzantine_audit.rs:
