/root/repo/target/release/examples/scaling-c003b30bd4a6d0cb.d: examples/scaling.rs

/root/repo/target/release/examples/scaling-c003b30bd4a6d0cb: examples/scaling.rs

examples/scaling.rs:
