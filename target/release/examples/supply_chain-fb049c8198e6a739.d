/root/repo/target/release/examples/supply_chain-fb049c8198e6a739.d: examples/supply_chain.rs

/root/repo/target/release/examples/supply_chain-fb049c8198e6a739: examples/supply_chain.rs

examples/supply_chain.rs:
