/root/repo/target/debug/examples/supply_chain-f5530ab502306752.d: examples/supply_chain.rs Cargo.toml

/root/repo/target/debug/examples/libsupply_chain-f5530ab502306752.rmeta: examples/supply_chain.rs Cargo.toml

examples/supply_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
