/root/repo/target/debug/examples/supply_chain-b59c7997e0a303d8.d: examples/supply_chain.rs

/root/repo/target/debug/examples/supply_chain-b59c7997e0a303d8: examples/supply_chain.rs

examples/supply_chain.rs:
