/root/repo/target/debug/examples/quickstart-df748c7de54a8b34.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-df748c7de54a8b34.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
