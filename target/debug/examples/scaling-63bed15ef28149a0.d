/root/repo/target/debug/examples/scaling-63bed15ef28149a0.d: examples/scaling.rs Cargo.toml

/root/repo/target/debug/examples/libscaling-63bed15ef28149a0.rmeta: examples/scaling.rs Cargo.toml

examples/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
