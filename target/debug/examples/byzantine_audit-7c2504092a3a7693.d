/root/repo/target/debug/examples/byzantine_audit-7c2504092a3a7693.d: examples/byzantine_audit.rs

/root/repo/target/debug/examples/byzantine_audit-7c2504092a3a7693: examples/byzantine_audit.rs

examples/byzantine_audit.rs:
