/root/repo/target/debug/examples/byzantine_audit-a3d28a0ea03c05ca.d: examples/byzantine_audit.rs Cargo.toml

/root/repo/target/debug/examples/libbyzantine_audit-a3d28a0ea03c05ca.rmeta: examples/byzantine_audit.rs Cargo.toml

examples/byzantine_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
