/root/repo/target/debug/examples/scaling-7095078df640499a.d: examples/scaling.rs

/root/repo/target/debug/examples/scaling-7095078df640499a: examples/scaling.rs

examples/scaling.rs:
