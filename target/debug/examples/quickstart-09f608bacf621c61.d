/root/repo/target/debug/examples/quickstart-09f608bacf621c61.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-09f608bacf621c61: examples/quickstart.rs

examples/quickstart.rs:
