/root/repo/target/debug/examples/banking-fd574c0e814f1505.d: examples/banking.rs Cargo.toml

/root/repo/target/debug/examples/libbanking-fd574c0e814f1505.rmeta: examples/banking.rs Cargo.toml

examples/banking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
