/root/repo/target/debug/examples/banking-8cbdc93fe7baedca.d: examples/banking.rs

/root/repo/target/debug/examples/banking-8cbdc93fe7baedca: examples/banking.rs

examples/banking.rs:
