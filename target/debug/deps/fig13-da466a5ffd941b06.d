/root/repo/target/debug/deps/fig13-da466a5ffd941b06.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-da466a5ffd941b06.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
