/root/repo/target/debug/deps/fides_bench-d87cc919062001fa.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfides_bench-d87cc919062001fa.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
