/root/repo/target/debug/deps/fig13-e85b1739a836a2f5.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-e85b1739a836a2f5.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
