/root/repo/target/debug/deps/fig14-1ca48f03c6fffc23.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-1ca48f03c6fffc23: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
