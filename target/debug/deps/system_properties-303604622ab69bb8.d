/root/repo/target/debug/deps/system_properties-303604622ab69bb8.d: tests/system_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_properties-303604622ab69bb8.rmeta: tests/system_properties.rs Cargo.toml

tests/system_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
