/root/repo/target/debug/deps/proptests-d89cc107a84a3583.d: crates/store/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d89cc107a84a3583.rmeta: crates/store/tests/proptests.rs Cargo.toml

crates/store/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
