/root/repo/target/debug/deps/fides_bench-14cca1d384f9e574.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fides_bench-14cca1d384f9e574: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
