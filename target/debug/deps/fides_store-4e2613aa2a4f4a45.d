/root/repo/target/debug/deps/fides_store-4e2613aa2a4f4a45.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libfides_store-4e2613aa2a4f4a45.rmeta: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
