/root/repo/target/debug/deps/fig13-1b247288a83088bc.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-1b247288a83088bc: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
