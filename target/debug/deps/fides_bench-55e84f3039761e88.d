/root/repo/target/debug/deps/fides_bench-55e84f3039761e88.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfides_bench-55e84f3039761e88.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfides_bench-55e84f3039761e88.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
