/root/repo/target/debug/deps/fides_store-463b1930cd4bce61.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/debug/deps/fides_store-463b1930cd4bce61: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
