/root/repo/target/debug/deps/commit-8ab7093bf157ab67.d: crates/bench/benches/commit.rs Cargo.toml

/root/repo/target/debug/deps/libcommit-8ab7093bf157ab67.rmeta: crates/bench/benches/commit.rs Cargo.toml

crates/bench/benches/commit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
