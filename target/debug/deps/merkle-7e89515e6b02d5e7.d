/root/repo/target/debug/deps/merkle-7e89515e6b02d5e7.d: crates/bench/benches/merkle.rs Cargo.toml

/root/repo/target/debug/deps/libmerkle-7e89515e6b02d5e7.rmeta: crates/bench/benches/merkle.rs Cargo.toml

crates/bench/benches/merkle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
