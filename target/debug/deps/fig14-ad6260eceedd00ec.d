/root/repo/target/debug/deps/fig14-ad6260eceedd00ec.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-ad6260eceedd00ec.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
