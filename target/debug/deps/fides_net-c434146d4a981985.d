/root/repo/target/debug/deps/fides_net-c434146d4a981985.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libfides_net-c434146d4a981985.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/sim.rs:
crates/net/src/transport.rs:
