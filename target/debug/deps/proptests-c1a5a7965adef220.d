/root/repo/target/debug/deps/proptests-c1a5a7965adef220.d: crates/ledger/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c1a5a7965adef220: crates/ledger/tests/proptests.rs

crates/ledger/tests/proptests.rs:
