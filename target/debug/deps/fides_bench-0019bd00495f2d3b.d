/root/repo/target/debug/deps/fides_bench-0019bd00495f2d3b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfides_bench-0019bd00495f2d3b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
