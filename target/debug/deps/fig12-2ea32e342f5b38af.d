/root/repo/target/debug/deps/fig12-2ea32e342f5b38af.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-2ea32e342f5b38af.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
