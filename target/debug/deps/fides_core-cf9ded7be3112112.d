/root/repo/target/debug/deps/fides_core-cf9ded7be3112112.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

/root/repo/target/debug/deps/fides_core-cf9ded7be3112112: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/behavior.rs:
crates/core/src/client.rs:
crates/core/src/messages.rs:
crates/core/src/occ.rs:
crates/core/src/partition.rs:
crates/core/src/server.rs:
crates/core/src/system.rs:
