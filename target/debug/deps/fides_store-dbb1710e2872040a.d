/root/repo/target/debug/deps/fides_store-dbb1710e2872040a.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libfides_store-dbb1710e2872040a.rmeta: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
