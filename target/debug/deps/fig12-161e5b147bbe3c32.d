/root/repo/target/debug/deps/fig12-161e5b147bbe3c32.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-161e5b147bbe3c32: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
