/root/repo/target/debug/deps/fides_bench-f521cdb6a0ee61a0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfides_bench-f521cdb6a0ee61a0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
