/root/repo/target/debug/deps/fides_store-a762b39a3141a7c2.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/debug/deps/libfides_store-a762b39a3141a7c2.rmeta: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
