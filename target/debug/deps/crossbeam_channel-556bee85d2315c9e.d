/root/repo/target/debug/deps/crossbeam_channel-556bee85d2315c9e.d: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/crossbeam_channel-556bee85d2315c9e: crates/shims/crossbeam-channel/src/lib.rs

crates/shims/crossbeam-channel/src/lib.rs:
