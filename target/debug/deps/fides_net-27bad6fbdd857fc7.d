/root/repo/target/debug/deps/fides_net-27bad6fbdd857fc7.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libfides_net-27bad6fbdd857fc7.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libfides_net-27bad6fbdd857fc7.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/sim.rs:
crates/net/src/transport.rs:
