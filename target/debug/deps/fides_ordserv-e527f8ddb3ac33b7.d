/root/repo/target/debug/deps/fides_ordserv-e527f8ddb3ac33b7.d: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/debug/deps/fides_ordserv-e527f8ddb3ac33b7: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

crates/ordserv/src/lib.rs:
crates/ordserv/src/ordering.rs:
crates/ordserv/src/pbft.rs:
crates/ordserv/src/proposal.rs:
