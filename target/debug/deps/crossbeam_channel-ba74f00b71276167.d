/root/repo/target/debug/deps/crossbeam_channel-ba74f00b71276167.d: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-ba74f00b71276167.rmeta: crates/shims/crossbeam-channel/src/lib.rs

crates/shims/crossbeam-channel/src/lib.rs:
