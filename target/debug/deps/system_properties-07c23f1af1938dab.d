/root/repo/target/debug/deps/system_properties-07c23f1af1938dab.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-07c23f1af1938dab: tests/system_properties.rs

tests/system_properties.rs:
