/root/repo/target/debug/deps/fides_ledger-61f01786a038533c.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libfides_ledger-61f01786a038533c.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs Cargo.toml

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
