/root/repo/target/debug/deps/proptests-d9d7df841c0f5d12.d: crates/crypto/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d9d7df841c0f5d12.rmeta: crates/crypto/tests/proptests.rs Cargo.toml

crates/crypto/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
