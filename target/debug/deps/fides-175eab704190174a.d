/root/repo/target/debug/deps/fides-175eab704190174a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfides-175eab704190174a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
