/root/repo/target/debug/deps/fides-e565a2f6997e733c.d: src/lib.rs

/root/repo/target/debug/deps/libfides-e565a2f6997e733c.rlib: src/lib.rs

/root/repo/target/debug/deps/libfides-e565a2f6997e733c.rmeta: src/lib.rs

src/lib.rs:
