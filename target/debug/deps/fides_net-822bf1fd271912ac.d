/root/repo/target/debug/deps/fides_net-822bf1fd271912ac.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/fides_net-822bf1fd271912ac: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/sim.rs:
crates/net/src/transport.rs:
