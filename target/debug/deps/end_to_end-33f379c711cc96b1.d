/root/repo/target/debug/deps/end_to_end-33f379c711cc96b1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-33f379c711cc96b1: tests/end_to_end.rs

tests/end_to_end.rs:
