/root/repo/target/debug/deps/fides_workload-303a4189fe798132.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libfides_workload-303a4189fe798132.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
