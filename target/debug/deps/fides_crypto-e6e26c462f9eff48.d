/root/repo/target/debug/deps/fides_crypto-e6e26c462f9eff48.d: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs

/root/repo/target/debug/deps/fides_crypto-e6e26c462f9eff48: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs

crates/crypto/src/lib.rs:
crates/crypto/src/cosi.rs:
crates/crypto/src/encoding.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/point.rs:
crates/crypto/src/schnorr.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/field.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/arith.rs:
