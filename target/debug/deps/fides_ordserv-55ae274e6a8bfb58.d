/root/repo/target/debug/deps/fides_ordserv-55ae274e6a8bfb58.d: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/debug/deps/libfides_ordserv-55ae274e6a8bfb58.rmeta: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

crates/ordserv/src/lib.rs:
crates/ordserv/src/ordering.rs:
crates/ordserv/src/pbft.rs:
crates/ordserv/src/proposal.rs:
