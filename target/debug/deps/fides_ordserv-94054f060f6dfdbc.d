/root/repo/target/debug/deps/fides_ordserv-94054f060f6dfdbc.d: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs Cargo.toml

/root/repo/target/debug/deps/libfides_ordserv-94054f060f6dfdbc.rmeta: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs Cargo.toml

crates/ordserv/src/lib.rs:
crates/ordserv/src/ordering.rs:
crates/ordserv/src/pbft.rs:
crates/ordserv/src/proposal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
