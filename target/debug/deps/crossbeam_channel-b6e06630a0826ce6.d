/root/repo/target/debug/deps/crossbeam_channel-b6e06630a0826ce6.d: crates/shims/crossbeam-channel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam_channel-b6e06630a0826ce6.rmeta: crates/shims/crossbeam-channel/src/lib.rs Cargo.toml

crates/shims/crossbeam-channel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
