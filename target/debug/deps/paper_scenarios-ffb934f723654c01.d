/root/repo/target/debug/deps/paper_scenarios-ffb934f723654c01.d: tests/paper_scenarios.rs

/root/repo/target/debug/deps/paper_scenarios-ffb934f723654c01: tests/paper_scenarios.rs

tests/paper_scenarios.rs:
