/root/repo/target/debug/deps/fault_detection-f01db45ed3ff2289.d: crates/core/tests/fault_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_detection-f01db45ed3ff2289.rmeta: crates/core/tests/fault_detection.rs Cargo.toml

crates/core/tests/fault_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
