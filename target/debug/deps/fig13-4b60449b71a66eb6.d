/root/repo/target/debug/deps/fig13-4b60449b71a66eb6.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-4b60449b71a66eb6.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
