/root/repo/target/debug/deps/proptests-6d321bcc1f0313e1.d: crates/ledger/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6d321bcc1f0313e1.rmeta: crates/ledger/tests/proptests.rs Cargo.toml

crates/ledger/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
