/root/repo/target/debug/deps/fides_ledger-cabcaca817fa9d01.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/debug/deps/fides_ledger-cabcaca817fa9d01: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
