/root/repo/target/debug/deps/fides-3fd26143467c19ff.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfides-3fd26143467c19ff.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
