/root/repo/target/debug/deps/fig14-087b9de02bf3249c.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-087b9de02bf3249c: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
