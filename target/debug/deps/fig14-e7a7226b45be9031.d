/root/repo/target/debug/deps/fig14-e7a7226b45be9031.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/libfig14-e7a7226b45be9031.rmeta: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
