/root/repo/target/debug/deps/fides_ledger-0a9193e7008ee419.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libfides_ledger-0a9193e7008ee419.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs Cargo.toml

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
