/root/repo/target/debug/deps/fides_core-3e828dc5767c0bee.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libfides_core-3e828dc5767c0bee.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/behavior.rs:
crates/core/src/client.rs:
crates/core/src/messages.rs:
crates/core/src/occ.rs:
crates/core/src/partition.rs:
crates/core/src/server.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
