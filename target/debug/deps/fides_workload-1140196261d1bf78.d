/root/repo/target/debug/deps/fides_workload-1140196261d1bf78.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libfides_workload-1140196261d1bf78.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
