/root/repo/target/debug/deps/fides_store-761811a9fcffb102.d: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/debug/deps/libfides_store-761811a9fcffb102.rlib: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

/root/repo/target/debug/deps/libfides_store-761811a9fcffb102.rmeta: crates/store/src/lib.rs crates/store/src/authenticated.rs crates/store/src/multi.rs crates/store/src/rwset.rs crates/store/src/single.rs crates/store/src/types.rs

crates/store/src/lib.rs:
crates/store/src/authenticated.rs:
crates/store/src/multi.rs:
crates/store/src/rwset.rs:
crates/store/src/single.rs:
crates/store/src/types.rs:
