/root/repo/target/debug/deps/proptest-fd2586ea4c865933.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fd2586ea4c865933.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
