/root/repo/target/debug/deps/fides_workload-b2a749a3accb52d2.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/fides_workload-b2a749a3accb52d2: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
