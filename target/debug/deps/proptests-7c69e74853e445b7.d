/root/repo/target/debug/deps/proptests-7c69e74853e445b7.d: crates/crypto/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7c69e74853e445b7: crates/crypto/tests/proptests.rs

crates/crypto/tests/proptests.rs:
