/root/repo/target/debug/deps/fig15-8057034a5c8382b8.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/libfig15-8057034a5c8382b8.rmeta: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
