/root/repo/target/debug/deps/fides_ledger-518a940940743a56.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/debug/deps/libfides_ledger-518a940940743a56.rlib: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/debug/deps/libfides_ledger-518a940940743a56.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
