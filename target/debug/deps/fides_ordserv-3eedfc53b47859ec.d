/root/repo/target/debug/deps/fides_ordserv-3eedfc53b47859ec.d: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/debug/deps/libfides_ordserv-3eedfc53b47859ec.rlib: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

/root/repo/target/debug/deps/libfides_ordserv-3eedfc53b47859ec.rmeta: crates/ordserv/src/lib.rs crates/ordserv/src/ordering.rs crates/ordserv/src/pbft.rs crates/ordserv/src/proposal.rs

crates/ordserv/src/lib.rs:
crates/ordserv/src/ordering.rs:
crates/ordserv/src/pbft.rs:
crates/ordserv/src/proposal.rs:
