/root/repo/target/debug/deps/fides_crypto-48f18e9e443c7033.d: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs Cargo.toml

/root/repo/target/debug/deps/libfides_crypto-48f18e9e443c7033.rmeta: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/cosi.rs:
crates/crypto/src/encoding.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/point.rs:
crates/crypto/src/schnorr.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/field.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/arith.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
