/root/repo/target/debug/deps/field-a09c26f1e6af7679.d: crates/bench/benches/field.rs Cargo.toml

/root/repo/target/debug/deps/libfield-a09c26f1e6af7679.rmeta: crates/bench/benches/field.rs Cargo.toml

crates/bench/benches/field.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
