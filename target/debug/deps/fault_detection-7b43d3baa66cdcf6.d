/root/repo/target/debug/deps/fault_detection-7b43d3baa66cdcf6.d: crates/core/tests/fault_detection.rs

/root/repo/target/debug/deps/fault_detection-7b43d3baa66cdcf6: crates/core/tests/fault_detection.rs

crates/core/tests/fault_detection.rs:
