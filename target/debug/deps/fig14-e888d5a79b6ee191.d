/root/repo/target/debug/deps/fig14-e888d5a79b6ee191.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-e888d5a79b6ee191.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
