/root/repo/target/debug/deps/fides-8ea9c1133a421b74.d: src/lib.rs

/root/repo/target/debug/deps/fides-8ea9c1133a421b74: src/lib.rs

src/lib.rs:
