/root/repo/target/debug/deps/fides_workload-d0ec24ec3c981f4e.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libfides_workload-d0ec24ec3c981f4e.rlib: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libfides_workload-d0ec24ec3c981f4e.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
