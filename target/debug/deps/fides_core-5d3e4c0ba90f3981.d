/root/repo/target/debug/deps/fides_core-5d3e4c0ba90f3981.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libfides_core-5d3e4c0ba90f3981.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/behavior.rs crates/core/src/client.rs crates/core/src/messages.rs crates/core/src/occ.rs crates/core/src/partition.rs crates/core/src/server.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/behavior.rs:
crates/core/src/client.rs:
crates/core/src/messages.rs:
crates/core/src/occ.rs:
crates/core/src/partition.rs:
crates/core/src/server.rs:
crates/core/src/system.rs:
