/root/repo/target/debug/deps/crossbeam_channel-6513cce0c494d12c.d: crates/shims/crossbeam-channel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam_channel-6513cce0c494d12c.rmeta: crates/shims/crossbeam-channel/src/lib.rs Cargo.toml

crates/shims/crossbeam-channel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
