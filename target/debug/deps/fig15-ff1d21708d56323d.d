/root/repo/target/debug/deps/fig15-ff1d21708d56323d.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-ff1d21708d56323d: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
