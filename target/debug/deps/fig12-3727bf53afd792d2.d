/root/repo/target/debug/deps/fig12-3727bf53afd792d2.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-3727bf53afd792d2.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
