/root/repo/target/debug/deps/fides_net-0654c433846af1cd.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libfides_net-0654c433846af1cd.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/sim.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/sim.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
