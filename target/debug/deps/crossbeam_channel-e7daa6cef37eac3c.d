/root/repo/target/debug/deps/crossbeam_channel-e7daa6cef37eac3c.d: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-e7daa6cef37eac3c.rlib: crates/shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-e7daa6cef37eac3c.rmeta: crates/shims/crossbeam-channel/src/lib.rs

crates/shims/crossbeam-channel/src/lib.rs:
