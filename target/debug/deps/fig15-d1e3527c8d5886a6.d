/root/repo/target/debug/deps/fig15-d1e3527c8d5886a6.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-d1e3527c8d5886a6.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
