/root/repo/target/debug/deps/fig15-39baf649c930e93f.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-39baf649c930e93f: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
