/root/repo/target/debug/deps/fig12-11dde8b35c26e4d9.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-11dde8b35c26e4d9.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
