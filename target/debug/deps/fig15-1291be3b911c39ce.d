/root/repo/target/debug/deps/fig15-1291be3b911c39ce.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-1291be3b911c39ce.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
