/root/repo/target/debug/deps/fides_crypto-87920778b00615d4.d: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs Cargo.toml

/root/repo/target/debug/deps/libfides_crypto-87920778b00615d4.rmeta: crates/crypto/src/lib.rs crates/crypto/src/cosi.rs crates/crypto/src/encoding.rs crates/crypto/src/hash.rs crates/crypto/src/merkle.rs crates/crypto/src/point.rs crates/crypto/src/schnorr.rs crates/crypto/src/sha256.rs crates/crypto/src/field.rs crates/crypto/src/scalar.rs crates/crypto/src/arith.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/cosi.rs:
crates/crypto/src/encoding.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/point.rs:
crates/crypto/src/schnorr.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/field.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/arith.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
