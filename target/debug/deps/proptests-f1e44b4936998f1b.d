/root/repo/target/debug/deps/proptests-f1e44b4936998f1b.d: crates/store/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f1e44b4936998f1b: crates/store/tests/proptests.rs

crates/store/tests/proptests.rs:
