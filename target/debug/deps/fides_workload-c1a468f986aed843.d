/root/repo/target/debug/deps/fides_workload-c1a468f986aed843.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libfides_workload-c1a468f986aed843.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
