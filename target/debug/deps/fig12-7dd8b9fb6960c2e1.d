/root/repo/target/debug/deps/fig12-7dd8b9fb6960c2e1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-7dd8b9fb6960c2e1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
