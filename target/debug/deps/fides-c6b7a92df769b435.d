/root/repo/target/debug/deps/fides-c6b7a92df769b435.d: src/lib.rs

/root/repo/target/debug/deps/libfides-c6b7a92df769b435.rmeta: src/lib.rs

src/lib.rs:
