/root/repo/target/debug/deps/paper_scenarios-866c2e057b1573c4.d: tests/paper_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scenarios-866c2e057b1573c4.rmeta: tests/paper_scenarios.rs Cargo.toml

tests/paper_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
