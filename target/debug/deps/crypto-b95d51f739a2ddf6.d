/root/repo/target/debug/deps/crypto-b95d51f739a2ddf6.d: crates/bench/benches/crypto.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto-b95d51f739a2ddf6.rmeta: crates/bench/benches/crypto.rs Cargo.toml

crates/bench/benches/crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
