/root/repo/target/debug/deps/fides_ledger-d11ddac524d2cf11.d: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

/root/repo/target/debug/deps/libfides_ledger-d11ddac524d2cf11.rmeta: crates/ledger/src/lib.rs crates/ledger/src/block.rs crates/ledger/src/log.rs crates/ledger/src/validate.rs

crates/ledger/src/lib.rs:
crates/ledger/src/block.rs:
crates/ledger/src/log.rs:
crates/ledger/src/validate.rs:
