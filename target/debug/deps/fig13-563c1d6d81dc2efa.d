/root/repo/target/debug/deps/fig13-563c1d6d81dc2efa.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-563c1d6d81dc2efa: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
